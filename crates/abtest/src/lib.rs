//! Simulated A/B test of the Section-V question recommender — the
//! evaluation the paper leaves as future work:
//!
//! > "The main next step … is incorporating our recommendation system
//! > into an online forum platform to observe its impact; the quality
//! > of the approach could be evaluated through A/B testing, comparing
//! > the net votes and response times observed in a group with the
//! > system in use to one with it not." (Section VI)
//!
//! The harness runs the synthetic forum ([`forumcast_synth`]) through
//! a **warmup phase** (organic behavior), trains the three predictors
//! offline on the warmup data, then replays the remaining question
//! stream through two arms:
//!
//! * **control** — answerers chosen by the organic process;
//! * **treatment** — the router recommends answerers (Eq. (2) of the
//!   paper); a recommended user *accepts* with probability tied to
//!   their organic inclination (`1 − e^{−κ·weight}`), and the router
//!   draws again on decline, falling back to the organic answerer
//!   after `max_attempts`.
//!
//! Both arms realize outcomes (votes, delays) from the same latent
//! user profiles, so the measured lift is causal within the
//! simulation.
//!
//! # Example
//!
//! ```no_run
//! use forumcast_abtest::{AbTestConfig, run};
//!
//! let report = run(&AbTestConfig::quick());
//! println!("{report}");
//! assert!(report.treatment.questions > 0);
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

use forumcast_core::{ResponsePredictor, TrainConfig, TrainingSet};
use forumcast_data::{Dataset, Thread, UserId};
use forumcast_features::{ExtractorConfig, FeatureExtractor};
use forumcast_recsys::{Candidate, QuestionRouter, RouterConfig};
use forumcast_synth::{ForumSimulator, QuestionEvent, SynthConfig};

/// Configuration of the simulated A/B test.
#[derive(Debug, Clone)]
pub struct AbTestConfig {
    /// Forum generator settings.
    pub synth: SynthConfig,
    /// Questions simulated organically before the intervention (the
    /// predictors train on these).
    pub warmup_questions: usize,
    /// Questions replayed through both arms.
    pub eval_questions: usize,
    /// Feature-extraction settings for offline training.
    pub extractor: ExtractorConfig,
    /// Predictor training settings.
    pub train: TrainConfig,
    /// Quality/timing tradeoff `λ_{q′}` used by the router.
    pub lambda: f64,
    /// Router eligibility threshold ε and load settings.
    pub router: RouterConfig,
    /// Acceptance scale κ: recommended users accept with probability
    /// `1 − e^{−κ·organic weight}`.
    pub acceptance_kappa: f64,
    /// Redraws before falling back to the organic answerer.
    pub max_attempts: usize,
    /// Negative samples per thread for the timing survival term.
    pub survival_samples: usize,
    /// RNG seed for training-side sampling.
    pub seed: u64,
}

impl AbTestConfig {
    /// Small test-scale configuration (seconds).
    pub fn quick() -> Self {
        AbTestConfig {
            synth: SynthConfig::small(),
            warmup_questions: 200,
            eval_questions: 100,
            extractor: ExtractorConfig::fast(),
            train: TrainConfig::fast(),
            lambda: 0.5,
            router: RouterConfig {
                epsilon: 0.3,
                default_capacity: 3.0,
                load_window: 24.0,
            },
            acceptance_kappa: 0.5,
            max_attempts: 4,
            survival_samples: 2,
            seed: 0xAB7E57,
        }
    }

    /// Medium-scale configuration for the `abtest` bench binary.
    pub fn standard() -> Self {
        AbTestConfig {
            synth: SynthConfig::medium(),
            warmup_questions: 2_000,
            eval_questions: 1_000,
            extractor: ExtractorConfig::paper(),
            train: TrainConfig::default(),
            ..AbTestConfig::quick()
        }
    }

    /// Sets the router's quality/timing tradeoff λ.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }
}

/// Realized outcomes of one experimental arm.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ArmStats {
    /// Questions that received at least one answer in this arm.
    pub questions: usize,
    /// Total realized answers.
    pub answers: usize,
    /// Mean net votes per answer.
    pub mean_votes: f64,
    /// Mean response delay per answer (hours).
    pub mean_delay: f64,
    /// Median response delay (hours).
    pub median_delay: f64,
}

impl ArmStats {
    fn from_outcomes(outcomes: &[(i32, f64)], questions: usize) -> ArmStats {
        if outcomes.is_empty() {
            return ArmStats {
                questions,
                ..ArmStats::default()
            };
        }
        let n = outcomes.len() as f64;
        let mut delays: Vec<f64> = outcomes.iter().map(|&(_, d)| d).collect();
        delays.sort_by(|a, b| a.total_cmp(b));
        ArmStats {
            questions,
            answers: outcomes.len(),
            mean_votes: outcomes.iter().map(|&(v, _)| v as f64).sum::<f64>() / n,
            mean_delay: delays.iter().sum::<f64>() / n,
            median_delay: delays[delays.len() / 2],
        }
    }
}

/// The A/B comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbTestReport {
    /// Control arm (organic answering).
    pub control: ArmStats,
    /// Treatment arm (router-recommended answering).
    pub treatment: ArmStats,
    /// Recommendations accepted / offered in the treatment arm.
    pub acceptance_rate: f64,
    /// Questions where the router had no feasible recommendation and
    /// fell back to organic.
    pub fallbacks: usize,
    /// The λ the router optimized with.
    pub lambda: f64,
}

impl AbTestReport {
    /// Vote lift of the treatment arm (absolute).
    pub fn vote_lift(&self) -> f64 {
        self.treatment.mean_votes - self.control.mean_votes
    }

    /// Delay reduction of the treatment arm in hours (positive =
    /// faster answers under the recommender).
    pub fn delay_reduction(&self) -> f64 {
        self.control.mean_delay - self.treatment.mean_delay
    }
}

impl fmt::Display for AbTestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "A/B test (λ = {}):", self.lambda)?;
        writeln!(
            f,
            "{:<11} {:>6} {:>8} {:>10} {:>12} {:>12}",
            "arm", "qs", "answers", "votes", "delay(mean)", "delay(p50)"
        )?;
        for (name, arm) in [("control", &self.control), ("treatment", &self.treatment)] {
            writeln!(
                f,
                "{:<11} {:>6} {:>8} {:>10.3} {:>11.2}h {:>11.2}h",
                name, arm.questions, arm.answers, arm.mean_votes, arm.mean_delay, arm.median_delay
            )?;
        }
        writeln!(
            f,
            "lift: votes {:+.3}, delay {:+.2} h; acceptance {:.0}%, {} fallbacks",
            self.vote_lift(),
            self.delay_reduction(),
            self.acceptance_rate * 100.0,
            self.fallbacks
        )
    }
}

/// Runs the simulated A/B test.
///
/// # Panics
///
/// Panics when the warmup produces no answered threads to train on.
pub fn run(config: &AbTestConfig) -> AbTestReport {
    let mut sim = ForumSimulator::new(&config.synth);

    // --- Phase 1: organic warmup + offline training ---
    let warmup_threads = sim.run_organic(config.warmup_questions);
    let warmup =
        Dataset::new(config.synth.num_users, warmup_threads).expect("simulator invariants hold");
    let (warmup, _) = warmup.preprocess();
    assert!(
        warmup.num_questions() > 0,
        "warmup produced no answered threads"
    );
    let extractor = FeatureExtractor::fit(warmup.threads(), warmup.num_users(), &config.extractor);
    let model = train_offline(&warmup, &extractor, config);

    // --- Phase 2: replay the question stream through both arms ---
    let mut router = QuestionRouter::new(config.router.clone());
    let mut control_outcomes: Vec<(i32, f64)> = Vec::new();
    let mut treatment_outcomes: Vec<(i32, f64)> = Vec::new();
    let mut control_questions = 0;
    let mut treatment_questions = 0;
    let mut offered = 0usize;
    let mut accepted = 0usize;
    let mut fallbacks = 0usize;

    for _ in 0..config.eval_questions {
        let ev = sim.next_question();
        let organic = sim.organic_answerers(&ev);
        if organic.is_empty() {
            continue;
        }
        // Control arm: realize the organic answers.
        control_questions += 1;
        for &u in &organic {
            for post in sim.realize_answer(&ev, u) {
                control_outcomes.push((post.votes, post.timestamp - ev.time()));
            }
        }

        // Treatment arm: route the first answering slot; remaining
        // organic answerers (if any) still respond on their own.
        treatment_questions += 1;
        let chosen = recommend_answerer(
            &mut sim,
            &mut router,
            &extractor,
            &model,
            &ev,
            config,
            &mut offered,
            &mut accepted,
        );
        let treated: Vec<u32> = match chosen {
            Some(u) => std::iter::once(u)
                .chain(organic.iter().copied().filter(|&o| o != u).skip(1))
                .collect(),
            None => {
                fallbacks += 1;
                organic.clone()
            }
        };
        for &u in &treated {
            for post in sim.realize_answer(&ev, u) {
                treatment_outcomes.push((post.votes, post.timestamp - ev.time()));
            }
        }
        if let Some(u) = chosen {
            router.record_answer(ev.time(), UserId(u));
        }
    }

    AbTestReport {
        control: ArmStats::from_outcomes(&control_outcomes, control_questions),
        treatment: ArmStats::from_outcomes(&treatment_outcomes, treatment_questions),
        acceptance_rate: if offered > 0 {
            accepted as f64 / offered as f64
        } else {
            0.0
        },
        fallbacks,
        lambda: config.lambda,
    }
}

/// Offline training on the warmup dataset: all answers as positives,
/// random non-answerers as negatives/survival samples.
fn train_offline(
    warmup: &Dataset,
    extractor: &FeatureExtractor,
    config: &AbTestConfig,
) -> ResponsePredictor {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let horizon = warmup.horizon();
    let mut ts = TrainingSet::new(extractor.dim());
    for thread in warmup.threads() {
        let d_q = extractor.question_topics(thread);
        let window = (horizon - thread.asked_at()).max(0.5);
        let mut answers = Vec::new();
        for a in &thread.answers {
            let x = extractor.features(a.author, thread, &d_q);
            ts.push_answer(x.clone(), true);
            ts.push_vote(x.clone(), a.votes as f64);
            answers.push((x, a.timestamp - thread.asked_at()));
        }
        let mut negatives = Vec::new();
        let mut guard = 0;
        while negatives.len() < config.survival_samples && guard < 50 {
            guard += 1;
            let u = UserId(rand::Rng::gen_range(&mut rng, 0..warmup.num_users()));
            if thread.answered_by(u) || u == thread.asker() {
                continue;
            }
            let x = extractor.features(u, thread, &d_q);
            ts.push_answer(x.clone(), false);
            negatives.push(x);
        }
        if !answers.is_empty() {
            ts.push_timing_thread(answers, negatives, window, warmup.num_users() as usize);
        }
    }
    ResponsePredictor::train(&ts, &config.train)
}

/// Routes one question in the treatment arm: scores every candidate,
/// asks the router, then walks its ranking until a candidate accepts.
#[allow(clippy::too_many_arguments)]
fn recommend_answerer(
    sim: &mut ForumSimulator,
    router: &mut QuestionRouter,
    extractor: &FeatureExtractor,
    model: &ResponsePredictor,
    ev: &QuestionEvent,
    config: &AbTestConfig,
    offered: &mut usize,
    accepted: &mut usize,
) -> Option<u32> {
    // Feature the candidates against the *warmup* history (offline
    // deployment: the model and features are trained once).
    let pseudo_thread = Thread::new(u32::MAX, ev.question.clone(), Vec::new());
    let d_q = extractor.question_topics(&pseudo_thread);
    let window = (sim.horizon() - ev.time()).max(0.5);
    let candidates: Vec<Candidate> = ev
        .candidates
        .iter()
        .map(|&u| {
            let x = extractor.features(UserId(u), &pseudo_thread, &d_q);
            let (a, v, r) = model.predict(&x, window);
            Candidate {
                user: UserId(u),
                answer_prob: a,
                votes: v,
                response_time: r,
            }
        })
        .collect();
    let rec = router.recommend(ev.time(), config.lambda, &candidates)?;
    for &user in rec.ranking().iter().take(config.max_attempts) {
        *offered += 1;
        if sim.accepts(ev, user.0, config.acceptance_kappa) {
            *accepted += 1;
            return Some(user.0);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_abtest_produces_balanced_arms() {
        let report = run(&AbTestConfig::quick());
        assert!(report.control.questions > 20, "{report}");
        assert_eq!(report.control.questions, report.treatment.questions);
        assert!(report.control.answers > 0 && report.treatment.answers > 0);
        assert!(report.control.mean_delay > 0.0);
        assert!((0.0..=1.0).contains(&report.acceptance_rate));
    }

    #[test]
    fn quality_routing_lifts_votes_or_speed() {
        // λ = 0 optimizes votes alone; the treatment arm should not be
        // materially worse on votes than control.
        let report = run(&AbTestConfig::quick().with_lambda(0.0));
        assert!(
            report.vote_lift() > -0.3,
            "quality routing should not hurt votes: {report}"
        );
    }

    #[test]
    fn lambda_shifts_the_objective_toward_speed() {
        // More evaluation questions than `quick` so the comparison is
        // a routing signal rather than sampling noise.
        let mut cfg = AbTestConfig::quick();
        cfg.eval_questions = 300;
        let fast = run(&cfg.clone().with_lambda(3.0));
        let quality = run(&cfg.with_lambda(0.0));
        // Same simulation seed: the speed-optimizing router should
        // produce no slower typical answers than the quality-optimizing
        // one. Compare medians, not means — per-answer delays are
        // heavy-tailed (organic stragglers run to tens of hours), so a
        // few-hundred-sample mean is dominated by whichever arm drew
        // the worse outliers, not by the routing policy under test.
        assert!(
            fast.treatment.median_delay <= quality.treatment.median_delay + 0.5,
            "fast median {} vs quality median {}",
            fast.treatment.median_delay,
            quality.treatment.median_delay
        );
    }

    #[test]
    fn report_display_mentions_both_arms() {
        let report = run(&AbTestConfig::quick());
        let text = report.to_string();
        assert!(text.contains("control"));
        assert!(text.contains("treatment"));
        assert!(text.contains("lift"));
    }

    #[test]
    fn report_serializes() {
        let report = run(&AbTestConfig::quick());
        let json = serde_json::to_string(&report).unwrap();
        let back: AbTestReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
