//! Generator configuration.

use serde::{Deserialize, Serialize};

/// How ground-truth response delays are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TimingNoise {
    /// Exact first-event draw from the decaying-rate point process
    /// `λ(t) = μ e^{−ωt}` (conditioned on answering in-window). The
    /// paper's model family, but with coefficient of variation ≈ 1
    /// the delays are mostly irreducible noise.
    PointProcess,
    /// Log-normal delay around the point process's conditional median
    /// with the given log-σ. This mimics habitual human latency (a
    /// user who checks the forum nightly answers in ~10 h with modest
    /// spread) while keeping the rate structure as the signal; it is
    /// the default because measured forum delays are far more
    /// user-predictable than a memoryless process allows.
    Lognormal {
        /// Standard deviation of the log-delay around the median.
        sigma: f64,
    },
}

/// Configuration of the synthetic forum generator.
///
/// Defaults mirror the paper's dataset at full scale
/// ([`SynthConfig::paper_scale`]); [`SynthConfig::small`] and
/// [`SynthConfig::medium`] are laptop-friendly scales with the same
/// shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of users in the population.
    pub num_users: u32,
    /// Number of question threads to generate (pre-filtering).
    pub num_questions: usize,
    /// Number of latent ground-truth topics.
    pub num_topics: usize,
    /// Length of the observation window in days (paper: 30).
    pub duration_days: f64,
    /// Probability a question receives no answers (paper: ≈40%).
    pub unanswered_prob: f64,
    /// Mean of the (1 + Poisson) extra-answer count for answered
    /// questions; paper averages ≈1.47 answers per answered question.
    pub extra_answers_mean: f64,
    /// Point-process decay rate ω (per hour) of the ground-truth
    /// response-time process.
    pub decay_rate: f64,
    /// Noise model for response delays.
    pub timing_noise: TimingNoise,
    /// Strength of topic match in answerer selection.
    pub topic_affinity: f64,
    /// Strength of repeat-interaction (social) preference.
    pub social_affinity: f64,
    /// Candidate-pool size for answerer selection (keeps generation
    /// O(questions × pool) instead of O(questions × users)).
    pub candidate_pool: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SynthConfig {
    /// Tiny dataset for unit tests (~200 users, 300 questions).
    pub fn small() -> Self {
        SynthConfig {
            num_users: 200,
            num_questions: 300,
            num_topics: 8,
            duration_days: 30.0,
            unanswered_prob: 0.4,
            extra_answers_mean: 0.47,
            decay_rate: 0.03,
            timing_noise: TimingNoise::Lognormal { sigma: 0.55 },
            topic_affinity: 5.0,
            social_affinity: 4.0,
            candidate_pool: 60,
            seed: 0xF0CA57,
        }
    }

    /// Medium dataset for experiments (~2,000 users, 3,000 questions);
    /// the scale the bundled experiment binaries default to.
    pub fn medium() -> Self {
        SynthConfig {
            num_users: 2_000,
            num_questions: 3_000,
            candidate_pool: 120,
            ..SynthConfig::small()
        }
    }

    /// Full paper scale (~14,600 users, ~21,000 questions over 30
    /// days). Generation takes noticeably longer; feature extraction
    /// at this scale uses sampled betweenness.
    pub fn paper_scale() -> Self {
        SynthConfig {
            num_users: 14_643,
            num_questions: 20_923,
            candidate_pool: 200,
            ..SynthConfig::small()
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of ground-truth topics.
    ///
    /// # Panics
    ///
    /// Panics when `num_topics == 0`.
    pub fn with_topics(mut self, num_topics: usize) -> Self {
        assert!(num_topics > 0, "need at least one topic");
        self.num_topics = num_topics;
        self
    }

    /// Generates the dataset described by this configuration.
    /// Convenience for [`crate::generate`].
    pub fn generate(&self) -> forumcast_data::Dataset {
        crate::generate(self)
    }

    /// Observation window length in hours.
    pub fn duration_hours(&self) -> f64 {
        self.duration_days * forumcast_data::HOURS_PER_DAY
    }
}

impl Default for SynthConfig {
    /// [`SynthConfig::medium`].
    fn default() -> Self {
        SynthConfig::medium()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_up() {
        assert!(SynthConfig::small().num_users < SynthConfig::medium().num_users);
        assert!(SynthConfig::medium().num_users < SynthConfig::paper_scale().num_users);
    }

    #[test]
    fn builder_methods() {
        let c = SynthConfig::small().with_seed(9).with_topics(3);
        assert_eq!(c.seed, 9);
        assert_eq!(c.num_topics, 3);
    }

    #[test]
    fn duration_hours_converts_days() {
        assert_eq!(SynthConfig::small().duration_hours(), 720.0);
    }

    #[test]
    #[should_panic(expected = "at least one topic")]
    fn zero_topics_rejected() {
        SynthConfig::small().with_topics(0);
    }
}
