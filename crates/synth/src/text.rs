//! Topic-conditioned text generation for synthetic posts.

use rand::Rng;

/// Generates post bodies whose words are drawn from per-topic
/// vocabularies, so a from-scratch LDA run on the output recovers the
/// latent topics. Each topic owns `words_per_topic` distinctive words
/// (`t3w17`-style) plus a shared pool of generic forum words.
#[derive(Debug, Clone)]
pub struct TextGenerator {
    topic_vocab: Vec<Vec<String>>,
    shared_vocab: Vec<String>,
}

/// Generic forum words mixed into every post.
const SHARED: &[&str] = &[
    "question", "problem", "error", "working", "tried", "example", "function", "value", "result",
    "running", "output", "install", "version", "update", "thanks", "help",
];

impl TextGenerator {
    /// Creates vocabularies for `num_topics` topics.
    ///
    /// # Panics
    ///
    /// Panics when `num_topics == 0` or `words_per_topic == 0`.
    pub fn new(num_topics: usize, words_per_topic: usize) -> Self {
        assert!(num_topics > 0, "need at least one topic");
        assert!(words_per_topic > 0, "need at least one word per topic");
        let topic_vocab = (0..num_topics)
            .map(|t| (0..words_per_topic).map(|w| format!("t{t}w{w}")).collect())
            .collect();
        TextGenerator {
            topic_vocab,
            shared_vocab: SHARED.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.topic_vocab.len()
    }

    /// Generates natural-language text of roughly `target_chars`
    /// characters from the given topic mixture. 80% of words come
    /// from topic vocabularies (topic chosen by the mixture), 20%
    /// from the shared pool.
    ///
    /// # Panics
    ///
    /// Panics when `mixture.len() != num_topics()`.
    pub fn words<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        mixture: &[f64],
        target_chars: usize,
    ) -> String {
        assert_eq!(
            mixture.len(),
            self.topic_vocab.len(),
            "mixture length must equal topic count"
        );
        let mut out = String::new();
        while out.len() < target_chars {
            if !out.is_empty() {
                out.push(' ');
            }
            let word = if rng.gen_bool(0.8) {
                let t = sample_categorical(rng, mixture);
                let v = &self.topic_vocab[t];
                &v[rng.gen_range(0..v.len())]
            } else {
                &self.shared_vocab[rng.gen_range(0..self.shared_vocab.len())]
            };
            out.push_str(word);
        }
        out
    }

    /// Generates a code snippet of roughly `target_chars` characters
    /// (topic-agnostic — code length is a *question* feature, its
    /// content is never topic-modeled).
    pub fn code<R: Rng + ?Sized>(&self, rng: &mut R, target_chars: usize) -> String {
        let mut out = String::new();
        let mut i = 0;
        while out.len() < target_chars {
            out.push_str(&format!("let x{} = f{}(y{});\n", i, rng.gen_range(0..9), i));
            i += 1;
        }
        out
    }
}

/// Samples an index from an unnormalized categorical distribution.
/// Falls back to uniform when all weights are zero.
pub fn sample_categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "empty categorical");
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn words_respect_target_length_roughly() {
        let mut rng = StdRng::seed_from_u64(0);
        let gen = TextGenerator::new(4, 20);
        let text = gen.words(&mut rng, &[0.25; 4], 300);
        assert!(text.len() >= 300 && text.len() < 340, "len {}", text.len());
    }

    #[test]
    fn concentrated_mixture_uses_that_topics_words() {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = TextGenerator::new(3, 10);
        let text = gen.words(&mut rng, &[0.0, 1.0, 0.0], 400);
        let topic1_words = text
            .split_whitespace()
            .filter(|w| w.starts_with("t1w"))
            .count();
        let other_topic_words = text
            .split_whitespace()
            .filter(|w| w.starts_with("t0w") || w.starts_with("t2w"))
            .count();
        assert!(topic1_words > 10);
        assert_eq!(other_topic_words, 0);
    }

    #[test]
    fn code_is_nonempty_and_long_enough() {
        let mut rng = StdRng::seed_from_u64(2);
        let gen = TextGenerator::new(2, 5);
        let code = gen.code(&mut rng, 100);
        assert!(code.len() >= 100);
        assert!(code.contains("let x0"));
    }

    #[test]
    fn categorical_follows_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[sample_categorical(&mut rng, &[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0], "{counts:?}");
        assert!((counts[2] as f64 / 3000.0 - 0.7).abs() < 0.05);
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[sample_categorical(&mut rng, &[0.0, 0.0, 0.0])] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty categorical")]
    fn empty_weights_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        sample_categorical(&mut rng, &[]);
    }
}
