//! The forum simulator entry point: turns a latent population into a
//! complete dataset. The stepwise machinery lives in
//! [`crate::simulator`]; this module provides the one-shot
//! [`generate`], the thread-count-invariant sharded
//! [`generate_with_threads`], and the shard-by-shard streaming
//! [`event_stream`] / [`ShardedEventStream`].

use forumcast_data::{events_from_threads, Dataset, ForumEvent, Thread};

use crate::config::SynthConfig;
#[cfg(test)]
use crate::simulator::{poisson, sample_decaying_process};
use crate::simulator::{ForumSimulator, SHARD_SIZE};

/// Generates a synthetic forum dataset per `config`. Deterministic
/// given `config.seed` — equivalent to
/// [`generate_with_threads`]`(config, 0)` (auto thread count), which
/// is safe because sharded output is bitwise-identical at any thread
/// count.
///
/// See the crate docs and DESIGN.md §3 for the generative process and
/// the paper statistics it is calibrated against.
///
/// # Example
///
/// ```
/// use forumcast_synth::{generate, SynthConfig};
/// let ds = generate(&SynthConfig::small());
/// assert_eq!(ds.num_questions(), SynthConfig::small().num_questions);
/// ```
pub fn generate(config: &SynthConfig) -> Dataset {
    generate_with_threads(config, 0)
}

/// Half-open question ranges, one per [`SHARD_SIZE`] shard.
fn shard_ranges(num_questions: usize) -> Vec<(usize, usize)> {
    (0..num_questions)
        .step_by(SHARD_SIZE)
        .map(|start| (start, (start + SHARD_SIZE).min(num_questions)))
        .collect()
}

/// One shard of threads from a worker positioned at `start`.
fn run_shard(sim: &ForumSimulator, start: usize, end: usize) -> Vec<Thread> {
    let _g = forumcast_obs::task_span("synth.shard", (start / SHARD_SIZE) as u64);
    let mut worker = sim.at_question(start as u32);
    worker.run_organic(end - start)
}

/// Sharded generation: questions are produced in independent
/// [`SHARD_SIZE`] shards (per-question seed derivation + shard-local
/// social memory), fanned out over up to `threads` workers (0 = auto)
/// and merged in fixed shard order — the output is bitwise-identical
/// at any thread count, and identical to a serial
/// [`ForumSimulator::run_organic`] sweep.
pub fn generate_with_threads(config: &SynthConfig, threads: usize) -> Dataset {
    let _span = forumcast_obs::span("synth.generate");
    let sim = ForumSimulator::new(config);
    let shards = shard_ranges(config.num_questions);
    let max_threads = forumcast_par::resolve_threads(threads);
    let per_shard: Vec<Vec<Thread>> =
        forumcast_par::parallel_map(&shards, max_threads, |&(start, end)| {
            run_shard(&sim, start, end)
        });
    let _merge = forumcast_obs::span("synth.merge");
    let mut all = Vec::with_capacity(config.num_questions);
    for batch in per_shard {
        all.extend(batch);
    }
    Dataset::new(config.num_users, all).expect("generator invariants hold")
}

/// Generates the synthetic forum as a deterministic *event stream*:
/// each shard's threads flattened into (timestamp, kind, question,
/// post)-ordered [`ForumEvent`]s, shards concatenated in order (event
/// id = stream index). Threads never span shards, so replaying the
/// stream rebuilds exactly the [`generate`] dataset. The canonical
/// producer input for WAL ingestion — `forumcast ingest --wal`
/// appends exactly this stream, so any two runs with the same config
/// fold to the same state hash.
///
/// Materializes the full stream; at scale, iterate a
/// [`ShardedEventStream`] instead (same events, same order, one batch
/// of shards resident at a time).
pub fn event_stream(config: &SynthConfig) -> Vec<ForumEvent> {
    ShardedEventStream::new(config, 0).collect()
}

/// Streaming variant of [`event_stream`]: yields the same events in
/// the same order, but generates shard-by-shard — one batch of shards
/// (≤ thread count) is resident at a time, never the whole `Dataset`.
/// Feeds `forumcast ingest --wal` at scales where the materialized
/// forum would not fit in memory.
pub struct ShardedEventStream {
    sim: ForumSimulator,
    shards: Vec<(usize, usize)>,
    next_shard: usize,
    max_threads: usize,
    buf: std::vec::IntoIter<ForumEvent>,
}

impl ShardedEventStream {
    /// A stream over `config`'s forum, generating with up to
    /// `threads` workers per batch (0 = auto).
    pub fn new(config: &SynthConfig, threads: usize) -> Self {
        ShardedEventStream {
            sim: ForumSimulator::new(config),
            shards: shard_ranges(config.num_questions),
            next_shard: 0,
            max_threads: forumcast_par::resolve_threads(threads),
            buf: Vec::new().into_iter(),
        }
    }

    fn refill(&mut self) -> bool {
        if self.next_shard >= self.shards.len() {
            return false;
        }
        let end = (self.next_shard + self.max_threads.max(1)).min(self.shards.len());
        let batch = &self.shards[self.next_shard..end];
        self.next_shard = end;
        let per_shard: Vec<Vec<ForumEvent>> =
            forumcast_par::parallel_map(batch, self.max_threads, |&(start, end)| {
                let threads = run_shard(&self.sim, start, end);
                events_from_threads(&threads)
            });
        let mut events = Vec::new();
        for shard in per_shard {
            events.extend(shard);
        }
        self.buf = events.into_iter();
        true
    }
}

impl Iterator for ShardedEventStream {
    type Item = ForumEvent;

    fn next(&mut self) -> Option<ForumEvent> {
        loop {
            if let Some(ev) = self.buf.next() {
                return Some(ev);
            }
            if !self.refill() {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forumcast_data::Dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn small_dataset() -> Dataset {
        generate(&SynthConfig::small().with_seed(42))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_dataset();
        let b = small_dataset();
        assert_eq!(a, b);
    }

    #[test]
    fn generation_is_identical_across_thread_counts() {
        let cfg = SynthConfig::small().with_seed(42);
        let h1 = generate_with_threads(&cfg, 1).fnv1a_hash();
        let h2 = generate_with_threads(&cfg, 2).fnv1a_hash();
        let h7 = generate_with_threads(&cfg, 7).fnv1a_hash();
        assert_eq!(h1, h2, "2 threads diverge from serial");
        assert_eq!(h1, h7, "7 threads diverge from serial");
    }

    #[test]
    fn generation_is_prefix_stable_as_the_forum_grows() {
        // Growing num_questions must never perturb earlier questions:
        // per-question seeds depend only on (seed, id) and shard
        // boundaries are fixed multiples of SHARD_SIZE.
        let small = SynthConfig::small().with_seed(11);
        let mut bigger = small.clone();
        bigger.num_questions += 173;
        let a = generate(&small);
        let b = generate(&bigger);
        // Thread vectors are time-sorted, so compare per question id:
        // every original question must be byte-identical in the
        // grown forum.
        for t in a.threads() {
            assert_eq!(
                Some(t),
                b.thread(t.id),
                "question {} changed when the forum grew",
                t.id.0
            );
        }
    }

    #[test]
    fn event_stream_is_deterministic_and_rebuilds_the_dataset() {
        let cfg = SynthConfig::small().with_seed(42);
        let a = event_stream(&cfg);
        let b = event_stream(&cfg);
        assert_eq!(a, b);
        let mut ing = forumcast_data::Ingestor::new();
        for (i, ev) in a.iter().enumerate() {
            ing.offer_event(i as u64, ev.clone());
        }
        let report = ing.finish();
        assert_eq!(report.poison_total(), 0, "synth events are all valid");
        assert_eq!(report.applied, a.len() as u64);
        assert_eq!(
            ing.state().to_dataset().threads(),
            small_dataset().threads(),
            "replaying the stream rebuilds the generated forum"
        );
    }

    #[test]
    fn streamed_events_match_materialized_stream_at_any_thread_count() {
        let cfg = SynthConfig::small().with_seed(13);
        let all = event_stream(&cfg);
        for threads in [1usize, 2, 7] {
            let streamed: Vec<_> = ShardedEventStream::new(&cfg, threads).collect();
            assert_eq!(all, streamed, "stream diverged at {threads} threads");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::small().with_seed(1));
        let b = generate(&SynthConfig::small().with_seed(2));
        assert_ne!(a, b);
    }

    #[test]
    fn unanswered_fraction_near_config() {
        let ds = small_dataset();
        let unanswered = ds.threads().iter().filter(|t| !t.is_answered()).count();
        let frac = unanswered as f64 / ds.num_questions() as f64;
        assert!((frac - 0.4).abs() < 0.12, "unanswered fraction {frac}");
    }

    #[test]
    fn answered_questions_average_about_1_5_answers() {
        let (clean, _) = small_dataset().preprocess();
        let avg = clean.num_answers() as f64 / clean.num_questions() as f64;
        assert!((1.2..1.9).contains(&avg), "avg answers {avg}");
    }

    #[test]
    fn question_lengths_are_lognormal_around_300() {
        let ds = small_dataset();
        let mut word_lens: Vec<f64> = ds
            .threads()
            .iter()
            .map(|t| t.question.body.word_len() as f64)
            .collect();
        word_lens.sort_by(|a, b| a.total_cmp(b));
        let median = word_lens[word_lens.len() / 2];
        assert!((200.0..450.0).contains(&median), "median word len {median}");
        // Some questions have no code at all.
        assert!(ds.threads().iter().any(|t| t.question.body.code_len() == 0));
        assert!(ds
            .threads()
            .iter()
            .any(|t| t.question.body.code_len() > 300));
    }

    #[test]
    fn votes_and_response_times_are_uncorrelated() {
        let (clean, _) = generate(&SynthConfig::medium().with_seed(3)).preprocess();
        let pairs = clean.answered_pairs();
        assert!(pairs.len() > 500);
        let n = pairs.len() as f64;
        let mv = pairs.iter().map(|p| p.votes as f64).sum::<f64>() / n;
        let mr = pairs.iter().map(|p| p.response_time).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut vv = 0.0;
        let mut vr = 0.0;
        for p in &pairs {
            let dv = p.votes as f64 - mv;
            let dr = p.response_time - mr;
            cov += dv * dr;
            vv += dv * dv;
            vr += dr * dr;
        }
        let corr = cov / (vv.sqrt() * vr.sqrt());
        assert!(corr.abs() < 0.1, "vote/time correlation {corr}");
    }

    #[test]
    fn active_users_respond_faster() {
        let (clean, _) = generate(&SynthConfig::medium().with_seed(4)).preprocess();
        let pairs = clean.answered_pairs();
        // Median response time of users with many vs few answers.
        let mut per_user: HashMap<u32, Vec<f64>> = HashMap::new();
        for p in &pairs {
            per_user.entry(p.user.0).or_default().push(p.response_time);
        }
        let median = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.total_cmp(b));
            v[v.len() / 2]
        };
        let mut active = Vec::new();
        let mut casual = Vec::new();
        for (_, mut times) in per_user {
            let m = median(&mut times);
            if times.len() >= 5 {
                active.push(m);
            } else if times.len() == 1 {
                casual.push(m);
            }
        }
        assert!(active.len() > 5, "need some active users");
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&active) < avg(&casual),
            "active median {} vs casual {}",
            avg(&active),
            avg(&casual)
        );
    }

    #[test]
    fn answer_matrix_is_sparse() {
        let (clean, _) = small_dataset().preprocess();
        let stats = clean.stats();
        assert!(
            stats.answer_matrix_density < 0.05,
            "density {}",
            stats.answer_matrix_density
        );
    }

    #[test]
    fn decaying_process_sampler_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let t = sample_decaying_process(&mut rng, 0.5, 0.08, 100.0);
            assert!(t > 0.0 && t <= 100.0, "t = {t}");
        }
    }

    #[test]
    fn decaying_process_higher_mu_means_faster() {
        let mut rng = StdRng::seed_from_u64(6);
        let avg = |mu: f64, rng: &mut StdRng| -> f64 {
            (0..400)
                .map(|_| sample_decaying_process(rng, mu, 0.05, 200.0))
                .sum::<f64>()
                / 400.0
        };
        let slow = avg(0.05, &mut rng);
        let fast = avg(2.0, &mut rng);
        assert!(fast < slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn poisson_small_mean_mostly_zero_or_one() {
        let mut rng = StdRng::seed_from_u64(7);
        let draws: Vec<usize> = (0..2000).map(|_| poisson(&mut rng, 0.47)).collect();
        let mean = draws.iter().sum::<usize>() as f64 / draws.len() as f64;
        assert!((mean - 0.47).abs() < 0.08, "poisson mean {mean}");
    }

    #[test]
    fn preprocessing_artifacts_exist() {
        // The generator injects rare duplicates/zero-delays; over a
        // medium dataset at least one of each should appear.
        let ds = generate(&SynthConfig::medium().with_seed(8));
        let (_, report) = ds.preprocess();
        assert!(
            report.duplicate_answers + report.zero_delay_answers > 0,
            "{report:?}"
        );
    }
}
