//! A stateful forum simulator: the generative process behind
//! [`crate::generate`], exposed step by step so downstream code can
//! *intervene* in answerer selection — the hook the A/B-testing
//! harness (`forumcast-abtest`) uses to deploy the paper's Section-V
//! recommender inside the simulation (the paper's stated future work).
//!
//! # Sharded determinism
//!
//! Question `i` draws every random number from its own
//! [`derive_question_seed`]-derived stream, and the social interaction
//! memory resets at fixed [`SHARD_SIZE`] boundaries. Consequently the
//! forum decomposes into independent shards of `SHARD_SIZE` questions:
//! a worker positioned at a shard start via
//! [`ForumSimulator::at_question`] reproduces exactly the threads a
//! serial [`run_organic`](ForumSimulator::run_organic) sweep would
//! produce for that range. [`crate::generate`] exploits this to fan
//! shards out over `forumcast-par` with a fixed-order merge —
//! bitwise-identical output at any thread count — and the stream is
//! prefix-stable: growing `num_questions` never perturbs earlier
//! questions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

use forumcast_data::{Hours, Post, PostBody, Thread, UserId};

use crate::config::{SynthConfig, TimingNoise};
use crate::population::{lognormal, sample_dirichlet, standard_normal, Population};
use crate::text::{sample_categorical, TextGenerator};

/// Questions per generation shard. The social interaction memory
/// resets at multiples of this, making shards independent; the value
/// is part of the canonical output (changing it changes the dataset a
/// seed produces), so treat it like a format constant.
pub const SHARD_SIZE: usize = 256;

/// Derives the per-question RNG seed from the forum seed — a
/// splitmix64-style finalizer, the same trick the LDA fold-in uses.
/// Statistically independent streams per question, stable under
/// changes to `num_questions` or thread count.
pub fn derive_question_seed(seed: u64, question_id: u32) -> u64 {
    let mut z = seed ^ (question_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One simulated question arrival, with everything an intervention
/// policy may inspect: the question post, the asker, and the organic
/// candidate pool.
#[derive(Debug, Clone)]
pub struct QuestionEvent {
    /// Sequential question id.
    pub id: u32,
    /// The question post (author, timestamp, votes, body).
    pub question: Post,
    /// How many answers the thread will organically receive (0 =
    /// unanswered).
    pub num_answers: usize,
    /// The organic candidate pool (asker excluded, deduplicated).
    pub candidates: Vec<u32>,
    /// Latent topic mixture of the question (available to policies
    /// for oracle studies; real deployments would infer it).
    pub mixture: Vec<f64>,
}

impl QuestionEvent {
    /// The asker.
    pub fn asker(&self) -> UserId {
        self.question.author
    }

    /// Question timestamp in hours.
    pub fn time(&self) -> Hours {
        self.question.timestamp
    }
}

/// Read-only state every shard worker shares: the latent population,
/// vocabulary, and cumulative sampling tables. Sampled once in
/// [`ForumSimulator::new`], then shared by reference between workers.
#[derive(Debug)]
struct Shared {
    config: SynthConfig,
    pop: Population,
    text: TextGenerator,
    horizon: Hours,
    cum_activity: Vec<f64>,
    cum_asking: Vec<f64>,
}

/// The stateful simulator. Create with [`ForumSimulator::new`], then
/// repeatedly: [`next_question`](Self::next_question) → choose
/// answerers (organically via
/// [`organic_answerers`](Self::organic_answerers) or by any policy) →
/// [`realize_answer`](Self::realize_answer) per answerer →
/// [`finish_thread`](Self::finish_thread).
#[derive(Debug, Clone)]
pub struct ForumSimulator {
    shared: Arc<Shared>,
    rng: StdRng,
    interactions: HashMap<(u32, u32), f64>,
    next_id: u32,
}

impl ForumSimulator {
    /// Creates a simulator (samples the latent population).
    pub fn new(config: &SynthConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let pop = Population::sample(config, &mut rng);
        let text = TextGenerator::new(config.num_topics, 40);
        let cum_activity = cumulative(pop.iter().map(|u| u.activity));
        let cum_asking = cumulative(pop.iter().map(|u| u.asking));
        ForumSimulator {
            shared: Arc::new(Shared {
                horizon: config.duration_hours(),
                config: config.clone(),
                pop,
                text,
                cum_activity,
                cum_asking,
            }),
            rng,
            interactions: HashMap::new(),
            next_id: 0,
        }
    }

    /// A worker positioned at question `id`, sharing this simulator's
    /// latent population without resampling it. The worker's social
    /// memory starts empty, so positioning at a [`SHARD_SIZE`]
    /// multiple reproduces the serial stream exactly from there.
    pub fn at_question(&self, id: u32) -> Self {
        ForumSimulator {
            shared: Arc::clone(&self.shared),
            rng: StdRng::seed_from_u64(derive_question_seed(self.shared.config.seed, id)),
            interactions: HashMap::new(),
            next_id: id,
        }
    }

    /// The latent population (for oracle analyses and tests).
    pub fn population(&self) -> &Population {
        &self.shared.pop
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &SynthConfig {
        &self.shared.config
    }

    /// Observation horizon in hours.
    pub fn horizon(&self) -> Hours {
        self.shared.horizon
    }

    /// Draws the next question arrival: asker, topics, body, votes,
    /// organic answer count, and candidate pool. Reseeds the RNG from
    /// the question id first, so the question (and everything realized
    /// for it afterwards) depends only on `(config.seed, id)` and the
    /// shard-local social memory.
    pub fn next_question(&mut self) -> QuestionEvent {
        self.rng =
            StdRng::seed_from_u64(derive_question_seed(self.shared.config.seed, self.next_id));
        if (self.next_id as usize).is_multiple_of(SHARD_SIZE) {
            self.interactions.clear();
        }
        let shared = Arc::clone(&self.shared);
        let config = &shared.config;
        let t_q = self.rng.gen_range(0.0..shared.horizon * 0.98);
        let asker = sample_cumulative(&mut self.rng, &shared.cum_asking) as u32;

        // Question topics: concentrated blend of one of the asker's
        // interest topics and a sparse Dirichlet background.
        let dominant =
            sample_categorical(&mut self.rng, &shared.pop.user(asker as usize).interests);
        let background = sample_dirichlet(&mut self.rng, config.num_topics, 0.2);
        let mixture: Vec<f64> = background
            .iter()
            .enumerate()
            .map(|(t, &b)| 0.3 * b + if t == dominant { 0.7 } else { 0.0 })
            .collect();

        // Lengths: log-normal, median ≈ 300 chars; code has higher
        // variance and is absent from ~20% of questions (Fig. 4e).
        let word_chars = lognormal(&mut self.rng, 300f64.ln(), 0.35) as usize;
        let code_chars = if self.rng.gen_bool(0.8) {
            lognormal(&mut self.rng, 300f64.ln(), 0.8) as usize
        } else {
            0
        };
        let q_body = PostBody::new(
            shared
                .text
                .words(&mut self.rng, &mixture, word_chars.max(20)),
            if code_chars > 0 {
                shared.text.code(&mut self.rng, code_chars)
            } else {
                String::new()
            },
        );
        let q_votes = (lognormal(&mut self.rng, 0.3, 0.9).round() as i32 - 1).clamp(-5, 100);
        let question = Post::new(UserId(asker), t_q, q_votes, q_body);

        let num_answers = if self.rng.gen_bool(config.unanswered_prob) {
            0
        } else {
            1 + poisson(&mut self.rng, config.extra_answers_mean)
        };

        let candidates = if num_answers > 0 {
            self.draw_candidate_pool(asker)
        } else {
            Vec::new()
        };

        let id = self.next_id;
        self.next_id += 1;
        QuestionEvent {
            id,
            question,
            num_answers,
            candidates,
            mixture,
        }
    }

    /// Candidate pool: the asker's past partners (always candidates —
    /// they follow the asker) topped up by activity-weighted sampling.
    fn draw_candidate_pool(&mut self, asker: u32) -> Vec<u32> {
        let shared = Arc::clone(&self.shared);
        let config = &shared.config;
        let mut partners: Vec<u32> = self
            .interactions
            .keys()
            .filter_map(|&(a, b)| {
                if a == asker {
                    Some(b)
                } else if b == asker {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        // HashMap iteration order is nondeterministic; sort to keep
        // the generator reproducible for a given seed.
        partners.sort_unstable();
        partners.truncate(config.candidate_pool / 3);
        let mut pool = partners;
        for _ in 0..config.candidate_pool * 2 {
            if pool.len() >= config.candidate_pool {
                break;
            }
            let c = sample_cumulative(&mut self.rng, &shared.cum_activity) as u32;
            if c != asker && !pool.contains(&c) {
                pool.push(c);
            }
        }
        pool
    }

    /// The organic answering weight of candidate `u` for this event —
    /// sub-linear activity × topical affinity × social familiarity.
    pub fn answer_weight(&self, ev: &QuestionEvent, u: u32) -> f64 {
        let p = self.shared.pop.user(u as usize);
        let s = topic_match(&p.interests, &ev.mixture);
        let social = *self
            .interactions
            .get(&pair(ev.asker().0, u))
            .unwrap_or(&0.0);
        p.activity.powf(0.4)
            * (self.shared.config.topic_affinity * s).exp()
            * (1.0 + self.shared.config.social_affinity * social)
    }

    /// Selects `ev.num_answers` answerers from the candidate pool by
    /// organic weighted sampling without replacement.
    pub fn organic_answerers(&mut self, ev: &QuestionEvent) -> Vec<u32> {
        if ev.candidates.is_empty() || ev.num_answers == 0 {
            return Vec::new();
        }
        let mut weights: Vec<f64> = ev
            .candidates
            .iter()
            .map(|&u| self.answer_weight(ev, u))
            .collect();
        let mut chosen = Vec::with_capacity(ev.num_answers);
        for _ in 0..ev.num_answers.min(ev.candidates.len()) {
            let i = sample_categorical(&mut self.rng, &weights);
            chosen.push(ev.candidates[i]);
            weights[i] = 0.0;
        }
        chosen
    }

    /// Probability that `u` accepts a recommendation to answer `ev`:
    /// `1 − exp(−κ · weight)` — candidates who would plausibly answer
    /// organically accept, uninterested ones decline. `kappa` scales
    /// the overall acceptance level.
    pub fn acceptance_probability(&self, ev: &QuestionEvent, u: u32, kappa: f64) -> f64 {
        1.0 - (-kappa * self.answer_weight(ev, u)).exp()
    }

    /// Flips the acceptance coin for a recommendation.
    pub fn accepts(&mut self, ev: &QuestionEvent, u: u32, kappa: f64) -> bool {
        let p = self.acceptance_probability(ev, u, kappa);
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Realizes user `u`'s answer to `ev` from their latent profile:
    /// point-process-informed delay and expertise-driven votes. May
    /// return a rare duplicate answer as well (preprocessing removes
    /// it). Updates the social interaction memory.
    pub fn realize_answer(&mut self, ev: &QuestionEvent, u: u32) -> Vec<Post> {
        let shared = Arc::clone(&self.shared);
        let config = &shared.config;
        let asker = ev.asker().0;
        let t_q = ev.time();
        let q_votes = ev.question.votes;
        let profile = shared.pop.user(u as usize);
        let s_topic = topic_match(&profile.interests, &ev.mixture);
        let social = *self.interactions.get(&pair(asker, u)).unwrap_or(&0.0);

        // Ground-truth point process λ(t) = μ e^{−ωt}. Both the
        // excitation and the decay scale with the user's
        // responsiveness: fast users answer early *and* their
        // interest decays quickly — this is what makes the user's
        // observed history (r_u, a_u) the dominant timing features,
        // as in the paper's Figure 6.
        let mu =
            (-2.4 + 1.6 * profile.responsiveness + 1.2 * s_topic + 0.4 * (1.0 + social).ln()).exp();
        let omega = config.decay_rate
            * (0.8 * profile.responsiveness + 0.3 * standard_normal(&mut self.rng)).exp();
        let max_delay = (shared.horizon - t_q).max(0.5);
        let mut delay = match config.timing_noise {
            TimingNoise::PointProcess => {
                sample_decaying_process(&mut self.rng, mu, omega, max_delay)
            }
            TimingNoise::Lognormal { sigma } => {
                let median = decaying_process_median(mu, omega, max_delay);
                (median * (sigma * standard_normal(&mut self.rng)).exp()).clamp(0.01, max_delay)
            }
        };
        // Rare zero-delay artifacts, as seen in the raw crawl
        // (removed by preprocessing).
        if self.rng.gen_bool(0.003) {
            delay = 0.0;
        }

        // Votes: expertise + question popularity + topic match.
        // Expertise is independent of the timing channel (Fig. 3);
        // popularity and topic match are exactly what the feature
        // vector observes (v_q, s_uq) while index-only MF cannot
        // recover them for held-out pairs — the paper's sparsity
        // argument.
        let votes = (0.7 * profile.expertise
            + 1.5 * (1.0 + q_votes.max(0) as f64).ln()
            + 1.2 * s_topic
            + 0.8 * standard_normal(&mut self.rng))
        .round() as i32;
        let votes = votes.clamp(-6, 80);

        // Answer text blends question topics and the answerer's own
        // interests.
        let blend: Vec<f64> = ev
            .mixture
            .iter()
            .zip(&profile.interests)
            .map(|(&m, &i)| 0.6 * m + 0.4 * i)
            .collect();
        let a_chars = lognormal(&mut self.rng, 150f64.ln(), 0.5) as usize;
        let a_body = PostBody::new(
            shared.text.words(&mut self.rng, &blend, a_chars.max(10)),
            if self.rng.gen_bool(0.3) {
                shared.text.code(&mut self.rng, 80)
            } else {
                String::new()
            },
        );
        let mut posts = vec![Post::new(UserId(u), t_q + delay, votes, a_body)];
        *self.interactions.entry(pair(asker, u)).or_insert(0.0) += 1.0;

        // Rare duplicate answer by the same user (removed by
        // preprocessing rule 2).
        if self.rng.gen_bool(0.003) {
            let dup_delay = delay + self.rng.gen_range(0.5..5.0);
            posts.push(Post::new(
                UserId(u),
                (t_q + dup_delay).min(shared.horizon),
                votes - 1,
                PostBody::words("duplicate follow-up"),
            ));
        }
        posts
    }

    /// Assembles the finished thread from an event and its realized
    /// answer posts.
    pub fn finish_thread(&self, ev: QuestionEvent, answers: Vec<Post>) -> Thread {
        Thread::new(ev.id, ev.question, answers)
    }

    /// Runs `n` questions fully organically, returning the threads —
    /// the building block of [`crate::generate`].
    pub fn run_organic(&mut self, n: usize) -> Vec<Thread> {
        let mut threads = Vec::with_capacity(n);
        for _ in 0..n {
            let ev = self.next_question();
            let answerers = self.organic_answerers(&ev);
            let mut answers = Vec::new();
            for u in answerers {
                answers.extend(self.realize_answer(&ev, u));
            }
            threads.push(self.finish_thread(ev, answers));
        }
        threads
    }
}

/// Total-variation similarity between two distributions.
pub(crate) fn topic_match(a: &[f64], b: &[f64]) -> f64 {
    let l1: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
    1.0 - 0.5 * l1
}

/// Canonical unordered pair key.
pub(crate) fn pair(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Inverse-transform sample of the first event of an inhomogeneous
/// Poisson process with rate `λ(t) = μ e^{−ωt}`, conditioned on the
/// event landing in `(0, max_delay]`.
pub(crate) fn sample_decaying_process(
    rng: &mut StdRng,
    mu: f64,
    omega: f64,
    max_delay: Hours,
) -> Hours {
    debug_assert!(mu > 0.0 && omega > 0.0);
    let h_max = mu / omega * (1.0 - (-omega * max_delay).exp());
    let p_max = 1.0 - (-h_max).exp();
    let u: f64 = rng.gen_range(0.0..p_max.max(1e-12));
    let h = -(1.0 - u).ln();
    let inner = (1.0 - omega * h / mu).max(1e-12);
    let t = -inner.ln() / omega;
    t.clamp(0.01, max_delay)
}

/// Median of the first-event distribution of `λ(t) = μ e^{−ωt}`
/// conditioned on the event landing in `(0, max_delay]`.
pub(crate) fn decaying_process_median(mu: f64, omega: f64, max_delay: Hours) -> Hours {
    let h_max = mu / omega * (1.0 - (-omega * max_delay).exp());
    let p_half = 0.5 * (1.0 - (-h_max).exp());
    let h = -(1.0 - p_half).ln();
    let inner = (1.0 - omega * h / mu).max(1e-12);
    (-inner.ln() / omega).clamp(0.01, max_delay)
}

/// Cumulative sums of an iterator of non-negative weights.
pub(crate) fn cumulative(weights: impl Iterator<Item = f64>) -> Vec<f64> {
    let mut cum = Vec::new();
    let mut total = 0.0;
    for w in weights {
        total += w.max(0.0);
        cum.push(total);
    }
    cum
}

/// Samples an index from cumulative weights via binary search.
pub(crate) fn sample_cumulative(rng: &mut StdRng, cum: &[f64]) -> usize {
    let total = *cum.last().expect("non-empty weights");
    let u = rng.gen::<f64>() * total;
    cum.partition_point(|&c| c <= u).min(cum.len() - 1)
}

/// Knuth's Poisson sampler (fine for small means).
pub(crate) fn poisson(rng: &mut StdRng, mean: f64) -> usize {
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulator_matches_generate_exactly() {
        // The refactor must preserve the organic RNG stream.
        let cfg = SynthConfig::small().with_seed(77);
        let via_generate = crate::generate(&cfg);
        let mut sim = ForumSimulator::new(&cfg);
        let threads = sim.run_organic(cfg.num_questions);
        let via_sim = forumcast_data::Dataset::new(cfg.num_users, threads).unwrap();
        assert_eq!(via_sim, via_generate);
    }

    #[test]
    fn question_seeds_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..10_000u32 {
            assert!(seen.insert(derive_question_seed(0xF0CA57, id)));
        }
        // Pinned: the derivation is part of the canonical output.
        assert_eq!(derive_question_seed(0, 0), derive_question_seed(0, 0));
        assert_ne!(derive_question_seed(1, 0), derive_question_seed(2, 0));
    }

    #[test]
    fn worker_at_shard_boundary_matches_serial_stream() {
        let cfg = SynthConfig::small().with_seed(9);
        let mut serial = ForumSimulator::new(&cfg);
        let all = serial.run_organic(SHARD_SIZE + 40);
        let mut worker = ForumSimulator::new(&cfg).at_question(SHARD_SIZE as u32);
        let tail = worker.run_organic(40);
        assert_eq!(&all[SHARD_SIZE..], &tail[..]);
    }

    #[test]
    fn events_have_consistent_candidates() {
        let cfg = SynthConfig::small().with_seed(3);
        let mut sim = ForumSimulator::new(&cfg);
        for _ in 0..50 {
            let ev = sim.next_question();
            assert!(!ev.candidates.contains(&ev.asker().0));
            if ev.num_answers > 0 {
                assert!(!ev.candidates.is_empty());
            }
            let answerers = sim.organic_answerers(&ev);
            assert!(answerers.len() <= ev.num_answers);
            for u in &answerers {
                assert!(ev.candidates.contains(u));
            }
        }
    }

    #[test]
    fn answer_weight_rises_with_social_history() {
        let cfg = SynthConfig::small().with_seed(4);
        let mut sim = ForumSimulator::new(&cfg);
        // Find an answered event and realize an answer; the same
        // pair's weight must rise afterwards.
        loop {
            let ev = sim.next_question();
            let answerers = sim.organic_answerers(&ev);
            if let Some(&u) = answerers.first() {
                let before = sim.answer_weight(&ev, u);
                sim.realize_answer(&ev, u);
                let after = sim.answer_weight(&ev, u);
                assert!(after > before, "{after} !> {before}");
                break;
            }
        }
    }

    #[test]
    fn acceptance_probability_monotone_in_kappa() {
        let cfg = SynthConfig::small().with_seed(5);
        let mut sim = ForumSimulator::new(&cfg);
        let ev = loop {
            let ev = sim.next_question();
            if !ev.candidates.is_empty() {
                break ev;
            }
        };
        let u = ev.candidates[0];
        let lo = sim.acceptance_probability(&ev, u, 0.1);
        let hi = sim.acceptance_probability(&ev, u, 2.0);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        assert!(hi >= lo);
    }

    #[test]
    fn realized_answers_have_valid_timing() {
        let cfg = SynthConfig::small().with_seed(6);
        let mut sim = ForumSimulator::new(&cfg);
        for _ in 0..30 {
            let ev = sim.next_question();
            for u in sim.organic_answerers(&ev) {
                for post in sim.realize_answer(&ev, u) {
                    assert!(post.timestamp >= ev.time());
                    assert!(post.timestamp <= sim.horizon() + 1e-9);
                }
            }
        }
    }
}
