//! The latent user population behind the generated forum.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::SynthConfig;

/// Latent traits of one synthetic user. Two independent channels are
/// deliberate: `responsiveness` (drives *timing*) is correlated with
/// `activity`, while `expertise` (drives *votes*) is independent of
/// both — this is what reproduces the paper's Figure 3 finding that
/// response quality and timing are uncorrelated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Heavy-tailed propensity to answer questions.
    pub activity: f64,
    /// Propensity to ask questions.
    pub asking: f64,
    /// Drives answer votes; independent of activity/responsiveness.
    pub expertise: f64,
    /// Drives the point-process excitation; correlated with activity
    /// (active users answer faster, Fig. 4b).
    pub responsiveness: f64,
    /// Dirichlet topic-interest distribution (length `num_topics`).
    pub interests: Vec<f64>,
}

/// The full latent population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    users: Vec<UserProfile>,
}

impl Population {
    /// Samples `config.num_users` users.
    pub fn sample<R: Rng + ?Sized>(config: &SynthConfig, rng: &mut R) -> Self {
        let users = (0..config.num_users)
            .map(|_| {
                // A shared "engagement" factor couples asking and
                // answering: people active on a forum do both. This
                // is what lets structural features (centrality,
                // co-occurrence, asking history) predict answering
                // for users with no prior answers — signal the
                // index-only SPARFA baseline cannot see.
                let engagement = lognormal(rng, -0.3, 0.9);
                let activity = engagement * lognormal(rng, -0.2, 0.6);
                let asking = engagement * lognormal(rng, 0.2, 0.6);
                let expertise: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
                // Responsiveness rises with activity plus noise.
                let responsiveness = 0.8 * activity.ln().max(-2.0) + rng.gen_range(-0.5..0.5);
                let interests = sample_dirichlet(rng, config.num_topics, 0.3);
                UserProfile {
                    activity,
                    asking,
                    expertise,
                    responsiveness,
                    interests,
                }
            })
            .collect();
        Population { users }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// `true` when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Profile of user `u`.
    ///
    /// # Panics
    ///
    /// Panics when `u` is out of range.
    pub fn user(&self, u: usize) -> &UserProfile {
        &self.users[u]
    }

    /// Iterates over all profiles.
    pub fn iter(&self) -> impl Iterator<Item = &UserProfile> {
        self.users.iter()
    }
}

/// Minimal distribution samplers (kept local to avoid another
/// dependency; `rand_distr` is not on the approved crate list).
pub mod rand_distr_shim {
    use rand::Rng;

    /// Log-normal sample `exp(N(mu, sigma))` via Box–Muller.
    pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * standard_normal(rng)).exp()
    }

    /// Standard normal via the Box–Muller transform.
    pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Symmetric Dirichlet(α) sample via normalized Gamma(α, 1)
    /// draws (Marsaglia–Tsang for α ≥ 1, boosted for α < 1).
    pub fn sample_dirichlet<R: Rng + ?Sized>(rng: &mut R, k: usize, alpha: f64) -> Vec<f64> {
        assert!(k > 0, "dirichlet needs k > 0");
        let mut g: Vec<f64> = (0..k).map(|_| gamma(rng, alpha)).collect();
        let sum: f64 = g.iter().sum();
        if sum <= 0.0 {
            return vec![1.0 / k as f64; k];
        }
        for x in &mut g {
            *x /= sum;
        }
        g
    }

    /// Gamma(shape, 1) via Marsaglia–Tsang.
    pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
        assert!(shape > 0.0, "gamma shape must be positive");
        if shape < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }
}

pub use rand_distr_shim::{gamma, lognormal, sample_dirichlet, standard_normal};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn population_has_requested_size_and_valid_interests() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SynthConfig::small();
        let pop = Population::sample(&cfg, &mut rng);
        assert_eq!(pop.len(), cfg.num_users as usize);
        for u in pop.iter() {
            assert!(u.activity > 0.0);
            assert_eq!(u.interests.len(), cfg.num_topics);
            assert!((u.interests.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(u.interests.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn activity_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = SynthConfig::medium();
        let pop = Population::sample(&cfg, &mut rng);
        let mut acts: Vec<f64> = pop.iter().map(|u| u.activity).collect();
        acts.sort_by(|a, b| a.total_cmp(b));
        let median = acts[acts.len() / 2];
        let p99 = acts[acts.len() * 99 / 100];
        assert!(p99 > 5.0 * median, "p99 {p99} vs median {median}");
    }

    #[test]
    fn responsiveness_correlates_with_activity_but_expertise_does_not() {
        let mut rng = StdRng::seed_from_u64(3);
        let pop = Population::sample(&SynthConfig::medium(), &mut rng);
        let corr = |f: fn(&UserProfile) -> f64, g: fn(&UserProfile) -> f64| -> f64 {
            let n = pop.len() as f64;
            let xs: Vec<f64> = pop.iter().map(&f).collect();
            let ys: Vec<f64> = pop.iter().map(&g).collect();
            let mx = xs.iter().sum::<f64>() / n;
            let my = ys.iter().sum::<f64>() / n;
            let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
            let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
            let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
            cov / (vx.sqrt() * vy.sqrt())
        };
        let act_resp = corr(|u| u.activity.ln(), |u| u.responsiveness);
        let act_exp = corr(|u| u.activity.ln(), |u| u.expertise);
        assert!(act_resp > 0.6, "activity-responsiveness corr {act_resp}");
        assert!(act_exp.abs() < 0.1, "activity-expertise corr {act_exp}");
    }

    #[test]
    fn dirichlet_sums_to_one_for_various_alpha() {
        let mut rng = StdRng::seed_from_u64(4);
        for &alpha in &[0.1, 0.5, 1.0, 5.0] {
            let d = sample_dirichlet(&mut rng, 6, alpha);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9, "alpha {alpha}");
        }
    }

    #[test]
    fn gamma_mean_approximates_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 4000;
        let mean: f64 = (0..n).map(|_| gamma(&mut rng, 3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "gamma(3) mean {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 8000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }
}
