//! Synthetic Stack-Overflow-like dataset generator for `forumcast`.
//!
//! The paper evaluates on a crawl of 20,923 "Python" questions from
//! the Stack Exchange API (Section III-A). That data is neither
//! redistributable nor reachable offline, so this crate provides a
//! **generative forum simulator** calibrated to every descriptive
//! statistic the paper reports; DESIGN.md §3 documents the
//! substitution in detail. The key properties preserved:
//!
//! * ~40% of questions unanswered before preprocessing, ≈1.5 answers
//!   per answered question, extreme answer-matrix sparsity;
//! * heavy-tailed user activity (≈40% of answerers post ≥2 answers,
//!   Fig. 4a) and **more active users answer faster** (Fig. 4b);
//! * answer votes driven by a user-expertise channel *independent* of
//!   the timing channel, so net votes and response times are
//!   uncorrelated (Fig. 3);
//! * question word/code lengths log-normal around ≈300 characters
//!   with higher code variance (Fig. 4e);
//! * topical structure: users have Dirichlet topic interests, posts
//!   are generated from per-topic vocabularies, and answerers
//!   preferentially pick questions matching their interests;
//! * social structure: repeat asker–answerer interactions (preferential
//!   attachment), producing disconnected SLN graphs with high degree
//!   variance (Fig. 2);
//! * ground-truth response times drawn from the paper's own
//!   exponentially-decaying-excitation point process
//!   `λ(t) = μ e^{−ωt}`, with `μ` a function of user responsiveness
//!   and topic match.
//!
//! # Example
//!
//! ```
//! use forumcast_synth::SynthConfig;
//!
//! let dataset = SynthConfig::small().with_seed(7).generate();
//! let (clean, report) = dataset.preprocess();
//! assert!(clean.num_questions() > 0);
//! assert!(report.unanswered_questions > 0);
//! ```

pub mod config;
pub mod generator;
pub mod population;
pub mod simulator;
pub mod text;

pub use config::{SynthConfig, TimingNoise};
pub use generator::{event_stream, generate, generate_with_threads, ShardedEventStream};
pub use population::{Population, UserProfile};
pub use simulator::{derive_question_seed, ForumSimulator, QuestionEvent, SHARD_SIZE};
