//! Postcard-style binary codec for the serde shim's [`Value`] tree.
//!
//! Every frame payload in the store is one encoded `Value`. Encoding
//! a `Value` instead of per-type layouts keeps the store generic —
//! `Serialize::to_value` / `Deserialize::from_value` already exist
//! for every checkpointed type, so the binary path reuses the exact
//! validation the JSON path runs — while fixing JSON's lossiness:
//! `F64` is stored as raw little-endian bits, so NaNs, infinities,
//! and every subnormal roundtrip bitwise (JSON collapses non-finite
//! floats to `null`).
//!
//! Wire format, one byte tag then tag-specific body:
//!
//! | tag | value      | body                                        |
//! |-----|------------|---------------------------------------------|
//! | 0   | `Null`     | —                                           |
//! | 1   | `false`    | —                                           |
//! | 2   | `true`     | —                                           |
//! | 3   | `I64`      | zigzag varint                               |
//! | 4   | `U64`      | varint                                      |
//! | 5   | `F64`      | 8 bytes, little-endian IEEE 754 bits        |
//! | 6   | `Str`      | varint byte length, UTF-8 bytes             |
//! | 7   | `Array`    | varint count, then each element             |
//! | 8   | `Object`   | varint count, then (Str-body key, value)*   |
//! | 9   | `F64Array` | varint count, then raw LE doubles           |
//!
//! Tag 9 is a write-side optimization: an `Array` whose elements are
//! all `F64` (the dominant shape — `TrainState::params`, Adam
//! moments) is packed as contiguous doubles, cutting the per-element
//! tag byte and making large parameter vectors `memcpy`-shaped. It
//! decodes back to a plain `Value::Array` of `F64`.
//!
//! The decoder is **total**: any byte slice yields either a `Value`
//! or a [`CodecError`] — never a panic, unbounded allocation, or
//! unbounded recursion. Declared counts are bounded by the bytes
//! actually remaining (each element needs ≥ 1 byte) before any
//! allocation, and nesting is capped at [`MAX_DEPTH`].

use serde::Value;

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_I64: u8 = 3;
const TAG_U64: u8 = 4;
const TAG_F64: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_ARRAY: u8 = 7;
const TAG_OBJECT: u8 = 8;
const TAG_F64_ARRAY: u8 = 9;

/// Maximum nesting depth the decoder will follow. Checkpoint values
/// nest a handful of levels; 64 is far above any legitimate payload
/// while keeping adversarial recursion trivially bounded.
pub const MAX_DEPTH: usize = 64;

/// Decode failure: the payload is not a well-formed encoded `Value`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    Truncated,
    /// A varint was malformed (truncated or overflowing).
    BadVarint,
    /// An unknown tag byte.
    BadTag(u8),
    /// A string body was not valid UTF-8.
    BadUtf8,
    /// A declared element/byte count exceeds the remaining input.
    BadLength,
    /// Nesting deeper than [`MAX_DEPTH`].
    TooDeep,
    /// Well-formed value followed by trailing bytes.
    TrailingBytes,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("payload truncated"),
            CodecError::BadVarint => f.write_str("malformed varint"),
            CodecError::BadTag(t) => write!(f, "unknown value tag {t}"),
            CodecError::BadUtf8 => f.write_str("string is not valid UTF-8"),
            CodecError::BadLength => f.write_str("declared length exceeds remaining input"),
            CodecError::TooDeep => f.write_str("value nesting exceeds depth limit"),
            CodecError::TrailingBytes => f.write_str("trailing bytes after value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes `value` into a fresh byte buffer.
pub fn encode_value(value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_into(value, &mut out);
    out
}

/// Appends the encoding of `value` to `out`.
pub fn encode_into(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::I64(v) => {
            out.push(TAG_I64);
            crate::varint::write_i64(out, *v);
        }
        Value::U64(v) => {
            out.push(TAG_U64);
            crate::varint::write_u64(out, *v);
        }
        Value::F64(v) => {
            out.push(TAG_F64);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            encode_str_body(s, out);
        }
        Value::Array(items) => {
            if !items.is_empty() && items.iter().all(|v| matches!(v, Value::F64(_))) {
                out.push(TAG_F64_ARRAY);
                crate::varint::write_u64(out, items.len() as u64);
                for item in items {
                    if let Value::F64(v) = item {
                        out.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                }
            } else {
                out.push(TAG_ARRAY);
                crate::varint::write_u64(out, items.len() as u64);
                for item in items {
                    encode_into(item, out);
                }
            }
        }
        Value::Object(fields) => {
            out.push(TAG_OBJECT);
            crate::varint::write_u64(out, fields.len() as u64);
            for (key, val) in fields {
                encode_str_body(key, out);
                encode_into(val, out);
            }
        }
    }
}

fn encode_str_body(s: &str, out: &mut Vec<u8>) {
    crate::varint::write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Decodes exactly one `Value` spanning all of `bytes`.
///
/// # Errors
///
/// [`CodecError`] on any malformation, including trailing bytes
/// after a well-formed value.
pub fn decode_value(bytes: &[u8]) -> Result<Value, CodecError> {
    let mut cursor = Cursor { buf: bytes, pos: 0 };
    let value = decode_at(&mut cursor, 0)?;
    if cursor.pos != bytes.len() {
        return Err(CodecError::TrailingBytes);
    }
    Ok(value)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take_byte(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn take_slice(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < len {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    fn take_u64(&mut self) -> Result<u64, CodecError> {
        let (v, used) = crate::varint::read_u64(&self.buf[self.pos..]).map_err(|e| match e {
            crate::varint::VarintError::Truncated => CodecError::Truncated,
            crate::varint::VarintError::Overflow => CodecError::BadVarint,
        })?;
        self.pos += used;
        Ok(v)
    }

    fn take_i64(&mut self) -> Result<i64, CodecError> {
        let (v, used) = crate::varint::read_i64(&self.buf[self.pos..]).map_err(|e| match e {
            crate::varint::VarintError::Truncated => CodecError::Truncated,
            crate::varint::VarintError::Overflow => CodecError::BadVarint,
        })?;
        self.pos += used;
        Ok(v)
    }

    fn take_f64(&mut self) -> Result<f64, CodecError> {
        let raw = self.take_slice(8)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(raw);
        Ok(f64::from_bits(u64::from_le_bytes(le)))
    }

    fn take_str(&mut self) -> Result<String, CodecError> {
        let len = self.bounded_count(1)?;
        let raw = self.take_slice(len)?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| CodecError::BadUtf8)
    }

    /// Reads a count varint and rejects it before any allocation if
    /// `count * min_bytes_per_item` cannot fit in the remaining
    /// input — a flipped length byte must not trigger a huge `Vec`.
    fn bounded_count(&mut self, min_bytes_per_item: usize) -> Result<usize, CodecError> {
        let declared = self.take_u64()?;
        let ceiling = (self.remaining() / min_bytes_per_item.max(1)) as u64;
        if declared > ceiling {
            return Err(CodecError::BadLength);
        }
        Ok(declared as usize)
    }
}

fn decode_at(cursor: &mut Cursor<'_>, depth: usize) -> Result<Value, CodecError> {
    if depth >= MAX_DEPTH {
        return Err(CodecError::TooDeep);
    }
    match cursor.take_byte()? {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_I64 => Ok(Value::I64(cursor.take_i64()?)),
        TAG_U64 => Ok(Value::U64(cursor.take_u64()?)),
        TAG_F64 => Ok(Value::F64(cursor.take_f64()?)),
        TAG_STR => Ok(Value::Str(cursor.take_str()?)),
        TAG_ARRAY => {
            let count = cursor.bounded_count(1)?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_at(cursor, depth + 1)?);
            }
            Ok(Value::Array(items))
        }
        TAG_OBJECT => {
            // Each field needs at least a 1-byte key length, an empty
            // key, and a 1-byte value tag.
            let count = cursor.bounded_count(2)?;
            let mut fields = Vec::with_capacity(count);
            for _ in 0..count {
                let key = cursor.take_str()?;
                let val = decode_at(cursor, depth + 1)?;
                fields.push((key, val));
            }
            Ok(Value::Object(fields))
        }
        TAG_F64_ARRAY => {
            let count = cursor.bounded_count(8)?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(Value::F64(cursor.take_f64()?));
            }
            Ok(Value::Array(items))
        }
        other => Err(CodecError::BadTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let bytes = encode_value(v);
        let back = decode_value(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    fn sample_object() -> Value {
        Value::Object(vec![
            ("epoch".into(), Value::U64(42)),
            ("loss".into(), Value::F64(0.125)),
            ("delta".into(), Value::I64(-7)),
            ("tag".into(), Value::Str("fold-3".into())),
            ("done".into(), Value::Bool(false)),
            ("missing".into(), Value::Null),
            (
                "params".into(),
                Value::Array(vec![
                    Value::F64(1.0),
                    Value::F64(-0.5),
                    Value::F64(f64::MIN_POSITIVE),
                ]),
            ),
            (
                "mixed".into(),
                Value::Array(vec![Value::U64(1), Value::Str("x".into()), Value::Null]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ])
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::I64(i64::MIN),
            Value::U64(u64::MAX),
            Value::F64(0.0),
            Value::F64(-0.0),
            Value::Str(String::new()),
            Value::Str("héllo wörld".into()),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn nested_object_roundtrips() {
        roundtrip(&sample_object());
    }

    /// JSON loses NaN/∞ (they serialize as `null`); the binary codec
    /// must preserve the exact bits.
    #[test]
    fn nonfinite_and_nan_payload_bits_roundtrip() {
        for bits in [
            f64::NAN.to_bits(),
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            0x7FF8_0000_DEAD_BEEF, // quiet NaN with payload
            (-0.0f64).to_bits(),
        ] {
            let v = Value::F64(f64::from_bits(bits));
            let back = decode_value(&encode_value(&v)).expect("decode");
            match back {
                Value::F64(f) => assert_eq!(f.to_bits(), bits),
                other => panic!("expected F64, got {other:?}"),
            }
        }
    }

    #[test]
    fn all_f64_arrays_use_the_packed_encoding() {
        let packed = encode_value(&Value::Array(vec![Value::F64(1.0); 100]));
        let mixed = encode_value(&Value::Array(
            std::iter::repeat_n(Value::F64(1.0), 99)
                .chain(std::iter::once(Value::Null))
                .collect::<Vec<_>>(),
        ));
        assert_eq!(packed[0], TAG_F64_ARRAY);
        assert_eq!(mixed[0], TAG_ARRAY);
        // Packed drops the per-element tag byte: 100 elements save
        // 100 bytes minus the one swapped element.
        assert!(packed.len() < mixed.len());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_value(&Value::U64(7));
        bytes.push(0);
        assert_eq!(decode_value(&bytes), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert_eq!(decode_value(&[200]), Err(CodecError::BadTag(200)));
    }

    #[test]
    fn empty_input_is_truncated() {
        assert_eq!(decode_value(&[]), Err(CodecError::Truncated));
    }

    #[test]
    fn huge_declared_count_is_rejected_without_allocating() {
        // Array claiming u64::MAX elements with no bodies.
        let mut bytes = vec![TAG_ARRAY];
        crate::varint::write_u64(&mut bytes, u64::MAX);
        assert_eq!(decode_value(&bytes), Err(CodecError::BadLength));

        // Packed f64 array claiming more doubles than bytes remain.
        let mut bytes = vec![TAG_F64_ARRAY];
        crate::varint::write_u64(&mut bytes, 1 << 40);
        bytes.extend_from_slice(&[0u8; 16]);
        assert_eq!(decode_value(&bytes), Err(CodecError::BadLength));

        // String claiming a longer body than remains.
        let mut bytes = vec![TAG_STR];
        crate::varint::write_u64(&mut bytes, 1 << 30);
        bytes.extend_from_slice(b"abc");
        assert_eq!(decode_value(&bytes), Err(CodecError::BadLength));
    }

    #[test]
    fn deep_nesting_is_rejected() {
        // MAX_DEPTH+8 nested single-element arrays.
        let depth = MAX_DEPTH + 8;
        let mut bytes = Vec::new();
        for _ in 0..depth {
            bytes.push(TAG_ARRAY);
            bytes.push(1); // one element
        }
        bytes.push(TAG_NULL);
        assert_eq!(decode_value(&bytes), Err(CodecError::TooDeep));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut bytes = vec![TAG_STR];
        crate::varint::write_u64(&mut bytes, 2);
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(decode_value(&bytes), Err(CodecError::BadUtf8));
    }

    /// The decoder must be total: every truncation of a real payload
    /// errors rather than panicking or succeeding.
    #[test]
    fn every_truncation_of_a_real_payload_is_detected() {
        let bytes = encode_value(&sample_object());
        for cut in 0..bytes.len() {
            match decode_value(&bytes[..cut]) {
                Err(_) => {}
                Ok(v) => panic!("truncation at {cut} decoded silently to {v:?}"),
            }
        }
    }
}
