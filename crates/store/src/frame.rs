//! Framed file format, durability protocol, and corruption policy.
//!
//! On-disk layout:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ magic  "FCSTBIN1"                                    8 bytes │
//! ├──────────────────────────────────────────────────────────────┤
//! │ header body: varint format version                           │
//! │              varint fingerprint length, fingerprint UTF-8    │
//! │ header CRC32 over the header body             4 bytes, LE    │
//! ├──────────────────────────────────────────────────────────────┤
//! │ frame 0: varint payload length                               │
//! │          payload bytes (one encoded Value)                   │
//! │          CRC32 over length varint + payload   4 bytes, LE    │
//! ├──────────────────────────────────────────────────────────────┤
//! │ frame 1 … frame N−1                                          │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Each frame CRC covers its *length varint* as well as the payload,
//! so a bit flip anywhere inside a complete frame is a guaranteed
//! CRC mismatch (CRC-32 detects all single-bit errors); a flip that
//! inflates a length varint past the end of the file degrades to a
//! torn tail, which truncates to the valid frame prefix. Either way
//! no mutated payload byte ever reaches a caller.
//!
//! Durability protocol ([`StoreFile::save`]): write `<path>.tmp` →
//! `File::sync_all` → rename over `path` → `sync_all` on the parent
//! directory handle, so the rename itself is durable. Readers
//! ([`StoreFile::load`]) apply the corruption policy: torn tail →
//! valid prefix + `store.frame.torn` counter; CRC mismatch →
//! quarantine the file to `<path>.corrupt` (+`store.crc.mismatch`,
//! `ckpt.corrupt.quarantined`) and return a typed error naming the
//! frame. [`scan`] is the pure, non-mutating variant backing the
//! `forumcast ckpt` CLI — it never counts, renames, or truncates.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::crc32::crc32;
use crate::varint;

/// File magic: identifies a forumcast binary store.
pub const MAGIC: [u8; 8] = *b"FCSTBIN1";

/// Current container format version (the header is self-describing;
/// payload schema evolution is the fingerprint's job).
pub const FORMAT_VERSION: u64 = 1;

/// Errors from store reads and writes.
#[derive(Debug)]
pub enum StoreError {
    /// An OS-level failure, with the path being operated on.
    Io {
        /// Path the operation touched.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The file does not begin with [`MAGIC`] — not a binary store
    /// (callers fall back to the legacy JSON parser on this).
    NotAStore {
        /// Offending path.
        path: PathBuf,
    },
    /// The header is unreadable: CRC mismatch or malformed fields.
    HeaderCorrupt {
        /// Offending path.
        path: PathBuf,
        /// What specifically failed.
        detail: String,
    },
    /// A well-formed header from a newer format version.
    UnsupportedVersion {
        /// Offending path.
        path: PathBuf,
        /// Version found in the header.
        version: u64,
    },
    /// A complete frame whose CRC does not match its contents.
    CrcMismatch {
        /// Offending path (after any quarantine rename, the
        /// original path; the message names the quarantine target).
        path: PathBuf,
        /// Zero-based index of the bad frame.
        frame: usize,
        /// Byte offset of the frame start within the file.
        offset: usize,
        /// Quarantine destination, if the file was moved.
        quarantined_to: Option<PathBuf>,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store io error at {}: {source}", path.display())
            }
            StoreError::NotAStore { path } => {
                write!(f, "{} is not a binary store (bad magic)", path.display())
            }
            StoreError::HeaderCorrupt { path, detail } => {
                write!(f, "store header corrupt in {}: {detail}", path.display())
            }
            StoreError::UnsupportedVersion { path, version } => write!(
                f,
                "store {} has format version {version}, newer than supported {FORMAT_VERSION}",
                path.display()
            ),
            StoreError::CrcMismatch {
                path,
                frame,
                offset,
                quarantined_to,
            } => {
                write!(
                    f,
                    "CRC mismatch in frame {frame} (offset {offset}) of {}",
                    path.display()
                )?;
                if let Some(q) = quarantined_to {
                    write!(f, "; file quarantined to {}", q.display())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Injected corruption applied by [`StoreFile::save`] *after* the
/// bytes are assembled — simulating media-level damage that the
/// tmp+rename protocol cannot see. The save still completes (write,
/// sync, rename) and returns `Ok`, exactly like a real torn write
/// that bites after the rename was made durable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Corruption {
    /// Cut the file midway through its final frame (or midway
    /// through the header when there are no frames).
    TearLastFrame,
    /// Flip one bit of frame payload. `bit` indexes the
    /// concatenation of all frame payload bytes, modulo its size, so
    /// any value is valid and deterministic.
    FlipPayloadBit {
        /// Global payload bit index (wrapped).
        bit: u64,
    },
}

/// Knobs for [`StoreFile::save`]. `Default` is a clean, durable save.
#[derive(Debug, Default)]
pub struct SaveOptions {
    /// Damage to inject into the written bytes (fault testing).
    pub corruption: Option<Corruption>,
    /// When set, the save fails at the `sync_all` step with an I/O
    /// error carrying this message, after removing the tmp file —
    /// simulating an fsync failure surfaced before the rename.
    pub fail_sync: Option<String>,
}

/// Why a scan stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameIssue {
    /// The final bytes are an incomplete frame (torn write): not
    /// enough bytes for the declared length plus its CRC.
    Torn {
        /// Byte offset where the incomplete frame begins.
        offset: usize,
    },
    /// A complete frame failed its CRC check.
    CrcMismatch {
        /// Zero-based index of the bad frame.
        frame: usize,
        /// Byte offset of the frame start.
        offset: usize,
    },
}

/// Result of a pure structural [`scan`].
#[derive(Debug)]
pub struct Scan {
    /// Format version from the header.
    pub version: u64,
    /// Config fingerprint from the header.
    pub fingerprint: String,
    /// Payloads of the valid frame prefix.
    pub frames: Vec<Vec<u8>>,
    /// Byte offset one past the last valid frame — the truncation
    /// point a repair would cut to.
    pub valid_end: usize,
    /// Total file length in bytes.
    pub file_len: usize,
    /// The problem that stopped the scan, if any.
    pub issue: Option<FrameIssue>,
}

/// An in-memory store file: header metadata plus raw frame payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreFile {
    /// Container format version (written as [`FORMAT_VERSION`]).
    pub version: u64,
    /// Free-form config fingerprint; readers compare it against the
    /// fingerprint they expect before trusting the payloads.
    pub fingerprint: String,
    /// Frame payloads, typically one encoded `Value` each.
    pub frames: Vec<Vec<u8>>,
}

impl StoreFile {
    /// Creates a store at the current format version.
    pub fn new(fingerprint: impl Into<String>, frames: Vec<Vec<u8>>) -> Self {
        StoreFile {
            version: FORMAT_VERSION,
            fingerprint: fingerprint.into(),
            frames,
        }
    }

    /// Serializes the store to its on-disk byte layout.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with_payload_spans().0
    }

    /// Serializes and also returns the (start, end) byte range of
    /// each frame's *payload* within the output — used by injected
    /// corruption to target payload bits precisely.
    fn encode_with_payload_spans(&self) -> (Vec<u8>, Vec<(usize, usize)>) {
        let mut out = Vec::with_capacity(64 + self.frames.iter().map(Vec::len).sum::<usize>());
        out.extend_from_slice(&MAGIC);

        let mut header = Vec::with_capacity(16 + self.fingerprint.len());
        varint::write_u64(&mut header, self.version);
        varint::write_u64(&mut header, self.fingerprint.len() as u64);
        header.extend_from_slice(self.fingerprint.as_bytes());
        let header_crc = crc32(&header);
        out.extend_from_slice(&header);
        out.extend_from_slice(&header_crc.to_le_bytes());

        let mut spans = Vec::with_capacity(self.frames.len());
        for payload in &self.frames {
            let frame_start = out.len();
            varint::write_u64(&mut out, payload.len() as u64);
            let payload_start = out.len();
            out.extend_from_slice(payload);
            spans.push((payload_start, out.len()));
            let frame_crc = crc32(&out[frame_start..]);
            out.extend_from_slice(&frame_crc.to_le_bytes());
        }
        (out, spans)
    }

    /// Atomically and durably writes the store to `path`, returning
    /// the number of bytes in the file.
    ///
    /// Protocol: write `<path>.tmp` (same naming rule as the legacy
    /// JSON checkpoints: the final extension is replaced), fsync the
    /// file, rename over `path`, fsync the parent directory.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure, including the
    /// injected `fail_sync` fault (tmp is removed first so no stale
    /// leftover survives an injected sync failure — a *real* crash
    /// mid-protocol is what leaves tmps behind, covered by
    /// [`reclaim_tmp`]).
    pub fn save(&self, path: &Path, opts: &SaveOptions) -> Result<u64, StoreError> {
        let (mut bytes, payload_spans) = self.encode_with_payload_spans();

        match &opts.corruption {
            None => {}
            Some(Corruption::TearLastFrame) => {
                let cut = match payload_spans.last() {
                    // Midway through the final frame's payload: the
                    // length varint promises more than remains.
                    Some(&(start, end)) => start + (end - start) / 2,
                    // No frames: tear the header itself.
                    None => bytes.len() / 2,
                };
                bytes.truncate(cut.max(1));
            }
            Some(Corruption::FlipPayloadBit { bit }) => {
                let total: usize = payload_spans.iter().map(|(s, e)| e - s).sum();
                if total > 0 {
                    let byte_idx = (bit / 8) as usize % total;
                    let mask = 1u8 << (bit % 8) as u8;
                    let mut remaining = byte_idx;
                    for &(start, end) in &payload_spans {
                        let len = end - start;
                        if remaining < len {
                            bytes[start + remaining] ^= mask;
                            break;
                        }
                        remaining -= len;
                    }
                }
            }
        }

        let tmp = path.with_extension("tmp");
        let io_err = |p: &Path| {
            let p = p.to_path_buf();
            move |source: std::io::Error| StoreError::Io { path: p, source }
        };

        let mut file = File::create(&tmp).map_err(io_err(&tmp))?;
        file.write_all(&bytes).map_err(io_err(&tmp))?;

        if let Some(msg) = &opts.fail_sync {
            drop(file);
            let _ = fs::remove_file(&tmp);
            return Err(StoreError::Io {
                path: tmp,
                source: std::io::Error::other(msg.clone()),
            });
        }

        file.sync_all().map_err(io_err(&tmp))?;
        drop(file);
        fs::rename(&tmp, path).map_err(io_err(path))?;
        sync_parent_dir(path)?;
        Ok(bytes.len() as u64)
    }

    /// Reads a store from `path`, applying the corruption policy:
    ///
    /// - torn tail → the valid frame prefix is returned and
    ///   `store.frame.torn` is counted;
    /// - frame or header CRC mismatch → the file is renamed to
    ///   `<path>.corrupt` (`store.crc.mismatch` +
    ///   `ckpt.corrupt.quarantined` counted) and a typed error names
    ///   the frame;
    /// - bad magic → [`StoreError::NotAStore`], file untouched, so
    ///   callers can try the legacy JSON parser;
    /// - newer format version with a valid header CRC →
    ///   [`StoreError::UnsupportedVersion`], file untouched.
    ///
    /// # Errors
    ///
    /// [`StoreError`] as above, or [`StoreError::Io`] if the file
    /// cannot be read.
    pub fn load(path: &Path) -> Result<StoreFile, StoreError> {
        let bytes = fs::read(path).map_err(|source| StoreError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let scan = match scan(&bytes, path) {
            Ok(scan) => scan,
            Err(err @ StoreError::HeaderCorrupt { .. }) => {
                forumcast_obs::counter_add("store.crc.mismatch", 1);
                quarantine(path);
                return Err(err);
            }
            Err(other) => return Err(other),
        };
        match scan.issue {
            None => {}
            Some(FrameIssue::Torn { .. }) => {
                forumcast_obs::counter_add("store.frame.torn", 1);
            }
            Some(FrameIssue::CrcMismatch { frame, offset }) => {
                forumcast_obs::counter_add("store.crc.mismatch", 1);
                let quarantined_to = quarantine(path);
                return Err(StoreError::CrcMismatch {
                    path: path.to_path_buf(),
                    frame,
                    offset,
                    quarantined_to,
                });
            }
        }
        Ok(StoreFile {
            version: scan.version,
            fingerprint: scan.fingerprint,
            frames: scan.frames,
        })
    }
}

/// Pure structural walk of store bytes: parses the header, then
/// frames until the end of the file, a torn tail, or a CRC mismatch.
/// Never mutates anything and never touches counters — this is the
/// read path for `forumcast ckpt inspect`/`verify`/`repair`.
///
/// # Errors
///
/// [`StoreError::NotAStore`] on bad magic,
/// [`StoreError::HeaderCorrupt`] on a damaged header,
/// [`StoreError::UnsupportedVersion`] on a valid newer header.
/// Frame-level problems are *not* errors here: they are reported in
/// [`Scan::issue`] alongside the valid prefix.
pub fn scan(bytes: &[u8], path: &Path) -> Result<Scan, StoreError> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::NotAStore {
            path: path.to_path_buf(),
        });
    }
    let header_corrupt = |detail: &str| StoreError::HeaderCorrupt {
        path: path.to_path_buf(),
        detail: detail.to_owned(),
    };

    let mut pos = MAGIC.len();
    let header_start = pos;
    let (version, used) =
        varint::read_u64(&bytes[pos..]).map_err(|_| header_corrupt("bad version varint"))?;
    pos += used;
    let (fp_len, used) = varint::read_u64(&bytes[pos..])
        .map_err(|_| header_corrupt("bad fingerprint length varint"))?;
    pos += used;
    let fp_len = usize::try_from(fp_len)
        .ok()
        .filter(|&n| n <= bytes.len().saturating_sub(pos))
        .ok_or_else(|| header_corrupt("fingerprint length exceeds file"))?;
    let fp_bytes = &bytes[pos..pos + fp_len];
    pos += fp_len;
    if bytes.len() < pos + 4 {
        return Err(header_corrupt("truncated header CRC"));
    }
    let stored = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
    if crc32(&bytes[header_start..pos]) != stored {
        return Err(header_corrupt("header CRC mismatch"));
    }
    let fingerprint = std::str::from_utf8(fp_bytes)
        .map_err(|_| header_corrupt("fingerprint is not UTF-8"))?
        .to_owned();
    pos += 4;
    if version > FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            version,
        });
    }

    let mut frames = Vec::new();
    let mut valid_end = pos;
    let mut issue = None;
    while pos < bytes.len() {
        let frame_start = pos;
        let Ok((payload_len, len_used)) = varint::read_u64(&bytes[pos..]) else {
            issue = Some(FrameIssue::Torn {
                offset: frame_start,
            });
            break;
        };
        // A complete frame needs the length varint, the payload, and
        // 4 CRC bytes; anything short of that is a torn tail.
        let fixed = pos + len_used + 4;
        let Some(payload_len) = usize::try_from(payload_len)
            .ok()
            .filter(|&n| fixed <= bytes.len() && n <= bytes.len() - fixed)
        else {
            issue = Some(FrameIssue::Torn {
                offset: frame_start,
            });
            break;
        };
        let payload_start = pos + len_used;
        let crc_start = payload_start + payload_len;
        let stored = u32::from_le_bytes(bytes[crc_start..crc_start + 4].try_into().unwrap());
        if crc32(&bytes[frame_start..crc_start]) != stored {
            issue = Some(FrameIssue::CrcMismatch {
                frame: frames.len(),
                offset: frame_start,
            });
            break;
        }
        frames.push(bytes[payload_start..crc_start].to_vec());
        pos = crc_start + 4;
        valid_end = pos;
    }

    Ok(Scan {
        version,
        fingerprint,
        frames,
        valid_end,
        file_len: bytes.len(),
        issue,
    })
}

/// Returns true if `bytes` begins with the store magic — the sniff
/// used to route a checkpoint file to the binary or legacy JSON
/// parser.
pub fn is_store_bytes(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// What one incremental varint read found.
enum VarintRead {
    /// A complete varint: the value and its raw encoded bytes.
    Value(u64, Vec<u8>),
    /// Clean end of file before the first byte.
    Eof,
    /// The file ended mid-varint, or the encoding overflowed — the
    /// incremental analogue of a torn tail.
    Torn,
}

/// Reads one LEB128 varint from `r`, byte by byte.
fn read_varint(r: &mut impl std::io::Read) -> std::io::Result<VarintRead> {
    let mut buf = Vec::with_capacity(varint::MAX_LEN);
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => {
                return Ok(if buf.is_empty() {
                    VarintRead::Eof
                } else {
                    VarintRead::Torn
                });
            }
            _ => buf.push(byte[0]),
        }
        if byte[0] & 0x80 == 0 || buf.len() >= varint::MAX_LEN {
            return Ok(match varint::read_u64(&buf) {
                Ok((value, used)) if used == buf.len() => VarintRead::Value(value, buf),
                _ => VarintRead::Torn,
            });
        }
    }
}

/// A streaming store reader: parses the header on open, then yields
/// one frame payload at a time — the whole file is never resident,
/// which is what lets the columnar dataset reader hold a single row
/// group in memory. Applies the same corruption policy as
/// [`StoreFile::load`]: torn tail → the valid prefix was already
/// yielded and the stream ends cleanly (`store.frame.torn` counted);
/// CRC mismatch → the file is quarantined and a typed error names
/// the frame.
#[derive(Debug)]
pub struct FrameReader {
    path: PathBuf,
    file: std::io::BufReader<File>,
    version: u64,
    fingerprint: String,
    file_len: u64,
    pos: u64,
    frame_index: usize,
    done: bool,
}

impl FrameReader {
    /// Opens `path` and validates the header (magic, version,
    /// fingerprint, header CRC).
    ///
    /// # Errors
    ///
    /// Mirrors [`StoreFile::load`]: [`StoreError::NotAStore`] on bad
    /// magic (file untouched), [`StoreError::HeaderCorrupt`] on
    /// header damage (file quarantined, `store.crc.mismatch`
    /// counted), [`StoreError::UnsupportedVersion`] on a valid newer
    /// header, [`StoreError::Io`] on filesystem failure.
    pub fn open(path: &Path) -> Result<FrameReader, StoreError> {
        let io_err = |source: std::io::Error| StoreError::Io {
            path: path.to_path_buf(),
            source,
        };
        let file = File::open(path).map_err(io_err)?;
        let file_len = file.metadata().map_err(io_err)?.len();
        let mut reader = std::io::BufReader::new(file);

        let mut magic = [0u8; 8];
        if std::io::Read::read_exact(&mut reader, &mut magic).is_err() || magic != MAGIC {
            return Err(StoreError::NotAStore {
                path: path.to_path_buf(),
            });
        }

        let header_corrupt = |reader: std::io::BufReader<File>, detail: &str| {
            drop(reader);
            forumcast_obs::counter_add("store.crc.mismatch", 1);
            quarantine(path);
            StoreError::HeaderCorrupt {
                path: path.to_path_buf(),
                detail: detail.to_owned(),
            }
        };

        // Header body: version varint, fingerprint length varint,
        // fingerprint bytes — accumulated verbatim for the CRC check.
        let mut header = Vec::new();
        let version = match read_varint(&mut reader).map_err(io_err)? {
            VarintRead::Value(v, raw) => {
                header.extend_from_slice(&raw);
                v
            }
            _ => return Err(header_corrupt(reader, "bad version varint")),
        };
        let fp_len = match read_varint(&mut reader).map_err(io_err)? {
            VarintRead::Value(v, raw) => {
                header.extend_from_slice(&raw);
                v
            }
            _ => return Err(header_corrupt(reader, "bad fingerprint length varint")),
        };
        let Some(fp_len) = usize::try_from(fp_len)
            .ok()
            .filter(|&n| (n as u64) <= file_len.saturating_sub(MAGIC.len() as u64))
        else {
            return Err(header_corrupt(reader, "fingerprint length exceeds file"));
        };
        let fp_start = header.len();
        header.resize(fp_start + fp_len, 0);
        if std::io::Read::read_exact(&mut reader, &mut header[fp_start..]).is_err() {
            return Err(header_corrupt(reader, "truncated fingerprint"));
        }
        let mut crc_bytes = [0u8; 4];
        if std::io::Read::read_exact(&mut reader, &mut crc_bytes).is_err() {
            return Err(header_corrupt(reader, "truncated header CRC"));
        }
        if crc32(&header) != u32::from_le_bytes(crc_bytes) {
            return Err(header_corrupt(reader, "header CRC mismatch"));
        }
        let Ok(fingerprint) = std::str::from_utf8(&header[fp_start..]).map(str::to_owned) else {
            return Err(header_corrupt(reader, "fingerprint is not UTF-8"));
        };
        if version > FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                path: path.to_path_buf(),
                version,
            });
        }

        let pos = MAGIC.len() as u64 + header.len() as u64 + 4;
        Ok(FrameReader {
            path: path.to_path_buf(),
            file: reader,
            version,
            fingerprint,
            file_len,
            pos,
            frame_index: 0,
            done: false,
        })
    }

    /// Container format version from the header.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Config fingerprint from the header.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Frames yielded so far.
    pub fn frames_read(&self) -> usize {
        self.frame_index
    }

    /// Reads the next frame payload. `Ok(None)` at the clean end of
    /// the file *or* at a torn tail (the valid prefix semantics of
    /// [`StoreFile::load`]; `store.frame.torn` is counted).
    ///
    /// # Errors
    ///
    /// [`StoreError::CrcMismatch`] on a damaged complete frame — the
    /// file is quarantined first — or [`StoreError::Io`].
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, StoreError> {
        if self.done {
            return Ok(None);
        }
        let io_err = |path: &Path| {
            let path = path.to_path_buf();
            move |source: std::io::Error| StoreError::Io { path, source }
        };
        let frame_start = self.pos;
        let (payload_len, len_bytes) =
            match read_varint(&mut self.file).map_err(io_err(&self.path))? {
                VarintRead::Eof => {
                    self.done = true;
                    return Ok(None);
                }
                VarintRead::Torn => return Ok(self.torn()),
                VarintRead::Value(v, raw) => (v, raw),
            };
        // A complete frame needs the length varint, the payload, and
        // 4 CRC bytes; a declared length past the end of the file is
        // a torn tail, exactly as in `scan`.
        let fixed = frame_start + len_bytes.len() as u64 + 4;
        let Some(payload_len) = usize::try_from(payload_len)
            .ok()
            .filter(|&n| fixed <= self.file_len && n as u64 <= self.file_len - fixed)
        else {
            return Ok(self.torn());
        };
        let len_used = len_bytes.len();
        let mut frame = len_bytes;
        frame.resize(len_used + payload_len, 0);
        if std::io::Read::read_exact(&mut self.file, &mut frame[len_used..]).is_err() {
            return Ok(self.torn());
        }
        let mut crc_bytes = [0u8; 4];
        if std::io::Read::read_exact(&mut self.file, &mut crc_bytes).is_err() {
            return Ok(self.torn());
        }
        if crc32(&frame) != u32::from_le_bytes(crc_bytes) {
            self.done = true;
            forumcast_obs::counter_add("store.crc.mismatch", 1);
            let quarantined_to = quarantine(&self.path);
            return Err(StoreError::CrcMismatch {
                path: self.path.clone(),
                frame: self.frame_index,
                offset: frame_start as usize,
                quarantined_to,
            });
        }
        self.frame_index += 1;
        self.pos = frame_start + len_used as u64 + payload_len as u64 + 4;
        Ok(Some(frame.split_off(len_used)))
    }

    /// Marks the stream torn: count, stop, end-of-stream.
    fn torn(&mut self) -> Option<Vec<u8>> {
        self.done = true;
        forumcast_obs::counter_add("store.frame.torn", 1);
        None
    }
}

/// Serializes just the container header — magic, format version,
/// fingerprint, header CRC — the prefix an append-only writer lays
/// down once before streaming frames with [`frame_bytes`].
/// Concatenating this with any sequence of `frame_bytes` outputs
/// yields exactly the byte layout [`scan`] parses.
pub fn header_bytes(fingerprint: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + 16 + fingerprint.len());
    out.extend_from_slice(&MAGIC);
    let mut header = Vec::with_capacity(16 + fingerprint.len());
    varint::write_u64(&mut header, FORMAT_VERSION);
    varint::write_u64(&mut header, fingerprint.len() as u64);
    header.extend_from_slice(fingerprint.as_bytes());
    let crc = crc32(&header);
    out.extend_from_slice(&header);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Serializes one frame — length varint, payload, CRC32 over both —
/// the unit an append-only writer adds per record.
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 14);
    varint::write_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// The quarantine destination for a corrupt file: the first *free* of
/// `<path>.corrupt`, `<path>.corrupt.1`, `<path>.corrupt.2`, … so a
/// repeat corruption of the same path never overwrites the forensic
/// evidence an earlier quarantine preserved.
pub fn corrupt_path(path: &Path) -> PathBuf {
    let mut base = path.as_os_str().to_owned();
    base.push(".corrupt");
    let first = PathBuf::from(&base);
    if !first.exists() {
        return first;
    }
    for n in 1u64.. {
        let mut name = base.clone();
        name.push(format!(".{n}"));
        let candidate = PathBuf::from(name);
        if !candidate.exists() {
            return candidate;
        }
    }
    unreachable!("some numbered quarantine slot is free")
}

/// Moves `path` aside to [`corrupt_path`], counting
/// `ckpt.corrupt.quarantined`. Best-effort: returns the destination
/// if the rename succeeded. The quarantined copy is preserved for
/// post-mortem inspection rather than deleted.
pub fn quarantine(path: &Path) -> Option<PathBuf> {
    let dest = corrupt_path(path);
    match fs::rename(path, &dest) {
        Ok(()) => {
            forumcast_obs::counter_add("ckpt.corrupt.quarantined", 1);
            Some(dest)
        }
        Err(_) => None,
    }
}

/// Removes a stale `<path>.tmp` left behind by a crash between the
/// tmp write and the rename, counting `ckpt.tmp.reclaimed` when one
/// was present. Call at resume start, before any load.
pub fn reclaim_tmp(path: &Path) -> bool {
    let tmp = path.with_extension("tmp");
    if tmp == path {
        return false;
    }
    match fs::remove_file(&tmp) {
        Ok(()) => {
            forumcast_obs::counter_add("ckpt.tmp.reclaimed", 1);
            true
        }
        Err(_) => false,
    }
}

/// Fsyncs the directory containing `path`, making a just-completed
/// rename durable.
fn sync_parent_dir(path: &Path) -> Result<(), StoreError> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let dir = File::open(&parent).map_err(|source| StoreError::Io {
        path: parent.clone(),
        source,
    })?;
    dir.sync_all().map_err(|source| StoreError::Io {
        path: parent,
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("forumcast-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    fn sample() -> StoreFile {
        StoreFile::new(
            "test-fp v1",
            vec![b"first payload".to_vec(), b"second".to_vec(), vec![0; 32]],
        )
    }

    #[test]
    fn save_load_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("a.ckpt");
        let store = sample();
        let bytes = store.save(&path, &SaveOptions::default()).expect("save");
        assert_eq!(bytes, fs::metadata(&path).expect("meta").len());
        let back = StoreFile::load(&path).expect("load");
        assert_eq!(back, store);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_store_roundtrips() {
        let dir = tmp_dir("empty");
        let path = dir.join("e.ckpt");
        let store = StoreFile::new("fp", vec![]);
        store.save(&path, &SaveOptions::default()).expect("save");
        let back = StoreFile::load(&path).expect("load");
        assert_eq!(back.frames.len(), 0);
        assert_eq!(back.fingerprint, "fp");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_truncates_to_valid_prefix() {
        let dir = tmp_dir("torn");
        let path = dir.join("t.ckpt");
        let store = sample();
        store
            .save(
                &path,
                &SaveOptions {
                    corruption: Some(Corruption::TearLastFrame),
                    fail_sync: None,
                },
            )
            .expect("save returns ok — the tear is post-rename damage");
        let back = StoreFile::load(&path).expect("torn tail is recoverable");
        assert_eq!(back.frames, store.frames[..2].to_vec());
        assert!(path.exists(), "torn file is not quarantined");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_quarantines_and_names_the_frame() {
        let dir = tmp_dir("flip");
        let path = dir.join("f.ckpt");
        sample()
            .save(
                &path,
                &SaveOptions {
                    // Payload byte 13 is inside frame 1.
                    corruption: Some(Corruption::FlipPayloadBit { bit: 13 * 8 + 2 }),
                    fail_sync: None,
                },
            )
            .expect("save");
        let err = StoreFile::load(&path).expect_err("flip must be detected");
        match err {
            StoreError::CrcMismatch {
                frame,
                quarantined_to,
                ..
            } => {
                assert_eq!(frame, 1);
                let dest = quarantined_to.expect("quarantined");
                assert_eq!(dest, path.with_extension("ckpt.corrupt"));
                assert!(dest.exists());
                assert!(!path.exists(), "original must be moved aside");
            }
            other => panic!("expected CrcMismatch, got {other}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fail_sync_surfaces_injected_error_and_leaves_no_tmp() {
        let dir = tmp_dir("sync");
        let path = dir.join("s.ckpt");
        let err = sample()
            .save(
                &path,
                &SaveOptions {
                    corruption: None,
                    fail_sync: Some("injected fault: fsync-fail".into()),
                },
            )
            .expect_err("sync failure must error");
        assert!(err.to_string().contains("injected fault: fsync-fail"));
        assert!(!path.exists());
        assert!(!path.with_extension("tmp").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn not_a_store_leaves_file_alone() {
        let dir = tmp_dir("json");
        let path = dir.join("legacy.json");
        fs::write(&path, b"{\"meta\":\"v1\"}").expect("write");
        let err = StoreFile::load(&path).expect_err("json is not a store");
        assert!(matches!(err, StoreError::NotAStore { .. }));
        assert!(path.exists(), "legacy files must survive the sniff");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn future_version_is_typed_and_not_quarantined() {
        let dir = tmp_dir("future");
        let path = dir.join("v9.ckpt");
        let mut future = sample();
        future.version = FORMAT_VERSION + 8;
        future.save(&path, &SaveOptions::default()).expect("save");
        let err = StoreFile::load(&path).expect_err("future version");
        assert!(matches!(
            err,
            StoreError::UnsupportedVersion { version, .. } if version == FORMAT_VERSION + 8
        ));
        assert!(path.exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_corruption_quarantines() {
        let dir = tmp_dir("header");
        let path = dir.join("h.ckpt");
        sample().save(&path, &SaveOptions::default()).expect("save");
        let mut bytes = fs::read(&path).expect("read");
        bytes[MAGIC.len()] ^= 0x40; // version varint bit
        fs::write(&path, &bytes).expect("rewrite");
        let err = StoreFile::load(&path).expect_err("header damage");
        assert!(matches!(err, StoreError::HeaderCorrupt { .. }), "{err}");
        assert!(path.with_extension("ckpt.corrupt").exists());
        assert!(!path.exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_reports_issue_without_mutating() {
        let dir = tmp_dir("scan");
        let path = dir.join("s.ckpt");
        sample()
            .save(
                &path,
                &SaveOptions {
                    corruption: Some(Corruption::FlipPayloadBit { bit: 0 }),
                    fail_sync: None,
                },
            )
            .expect("save");
        let bytes = fs::read(&path).expect("read");
        let scan = scan(&bytes, &path).expect("scannable");
        assert_eq!(
            scan.issue,
            Some(FrameIssue::CrcMismatch {
                frame: 0,
                offset: scan.valid_end
            })
        );
        assert!(scan.frames.is_empty());
        assert!(path.exists(), "scan never quarantines");
        assert!(!corrupt_path(&path).exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reclaim_tmp_removes_stale_leftover() {
        let dir = tmp_dir("reclaim");
        let path = dir.join("c.ckpt");
        let stale = path.with_extension("tmp");
        fs::write(&stale, b"half-written").expect("write stale tmp");
        assert!(reclaim_tmp(&path));
        assert!(!stale.exists());
        assert!(!reclaim_tmp(&path), "second reclaim finds nothing");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncating_to_valid_end_yields_a_clean_store() {
        // The repair operation: cut the file at Scan::valid_end.
        let dir = tmp_dir("repair");
        let path = dir.join("r.ckpt");
        let store = sample();
        store
            .save(
                &path,
                &SaveOptions {
                    corruption: Some(Corruption::TearLastFrame),
                    fail_sync: None,
                },
            )
            .expect("save");
        let bytes = fs::read(&path).expect("read");
        let report = scan(&bytes, &path).expect("scannable");
        assert!(matches!(report.issue, Some(FrameIssue::Torn { .. })));
        fs::write(&path, &bytes[..report.valid_end]).expect("truncate");
        let back = StoreFile::load(&path).expect("repaired loads clean");
        assert_eq!(back.frames, store.frames[..2].to_vec());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repeated_quarantine_never_clobbers_earlier_evidence() {
        let dir = tmp_dir("requarantine");
        let path = dir.join("q.ckpt");
        fs::write(&path, b"first corpse").expect("write");
        let first = quarantine(&path).expect("first quarantine");
        assert_eq!(first, path.with_extension("ckpt.corrupt"));
        fs::write(&path, b"second corpse").expect("rewrite");
        let second = quarantine(&path).expect("second quarantine");
        assert_eq!(second, path.with_extension("ckpt.corrupt.1"));
        fs::write(&path, b"third corpse").expect("rewrite");
        let third = quarantine(&path).expect("third quarantine");
        assert_eq!(third, path.with_extension("ckpt.corrupt.2"));
        assert_eq!(fs::read(&first).expect("first"), b"first corpse");
        assert_eq!(fs::read(&second).expect("second"), b"second corpse");
        assert_eq!(fs::read(&third).expect("third"), b"third corpse");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frame_reader_streams_a_clean_file() {
        let dir = tmp_dir("reader-clean");
        let path = dir.join("c.ckpt");
        let store = sample();
        store.save(&path, &SaveOptions::default()).expect("save");
        let mut reader = FrameReader::open(&path).expect("open");
        assert_eq!(reader.version(), FORMAT_VERSION);
        assert_eq!(reader.fingerprint(), store.fingerprint);
        let mut frames = Vec::new();
        while let Some(frame) = reader.next_frame().expect("read") {
            frames.push(frame);
        }
        assert_eq!(frames, store.frames);
        assert_eq!(reader.frames_read(), 3);
        assert!(reader.next_frame().expect("idempotent end").is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frame_reader_torn_tail_yields_valid_prefix() {
        let dir = tmp_dir("reader-torn");
        let path = dir.join("t.ckpt");
        let store = sample();
        store
            .save(
                &path,
                &SaveOptions {
                    corruption: Some(Corruption::TearLastFrame),
                    fail_sync: None,
                },
            )
            .expect("save");
        let mut reader = FrameReader::open(&path).expect("open");
        let mut frames = Vec::new();
        while let Some(frame) = reader.next_frame().expect("read") {
            frames.push(frame);
        }
        assert_eq!(frames, store.frames[..2].to_vec());
        assert!(path.exists(), "torn file is not quarantined");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frame_reader_crc_flip_quarantines_and_names_the_frame() {
        let dir = tmp_dir("reader-flip");
        let path = dir.join("f.ckpt");
        sample()
            .save(
                &path,
                &SaveOptions {
                    // Payload byte 13 is inside frame 1.
                    corruption: Some(Corruption::FlipPayloadBit { bit: 13 * 8 + 2 }),
                    fail_sync: None,
                },
            )
            .expect("save");
        let mut reader = FrameReader::open(&path).expect("open");
        assert!(reader.next_frame().expect("frame 0 is intact").is_some());
        let err = reader.next_frame().expect_err("flip must be detected");
        match err {
            StoreError::CrcMismatch {
                frame,
                quarantined_to,
                ..
            } => {
                assert_eq!(frame, 1);
                let dest = quarantined_to.expect("quarantined");
                assert!(dest.exists());
                assert!(!path.exists(), "original must be moved aside");
            }
            other => panic!("expected CrcMismatch, got {other}"),
        }
        assert!(reader.next_frame().expect("stream over").is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frame_reader_matches_scan_on_appended_bytes() {
        let dir = tmp_dir("reader-append");
        let path = dir.join("a.ckpt");
        let store = sample();
        let mut appended = header_bytes(&store.fingerprint);
        for frame in &store.frames {
            appended.extend_from_slice(&frame_bytes(frame));
        }
        fs::write(&path, &appended).expect("write");
        let mut reader = FrameReader::open(&path).expect("open");
        let mut frames = Vec::new();
        while let Some(frame) = reader.next_frame().expect("read") {
            frames.push(frame);
        }
        assert_eq!(frames, store.frames);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_encoders_match_whole_file_encode() {
        // `header_bytes` + a `frame_bytes` per payload must be
        // byte-identical to `StoreFile::encode` — the contract that
        // lets an append-only writer produce files `scan` parses.
        let store = sample();
        let mut appended = header_bytes(&store.fingerprint);
        for frame in &store.frames {
            appended.extend_from_slice(&frame_bytes(frame));
        }
        assert_eq!(appended, store.encode());
        let report = scan(&appended, Path::new("a.ckpt")).expect("scannable");
        assert_eq!(report.frames, store.frames);
        assert!(report.issue.is_none());
    }
}
