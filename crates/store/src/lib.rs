//! Crash-consistent framed binary record store.
//!
//! The durability substrate for forumcast's checkpoint/resume stack
//! (and, per the roadmap, the future replayable event log): a
//! versioned file header carrying a config fingerprint, followed by
//! length-prefixed frames that each carry a CRC32, with payloads in
//! a postcard-style varint/little-endian codec over the serde shim's
//! `Value` tree.
//!
//! Guarantees:
//!
//! - **No silent garbage.** Every byte of every frame (including its
//!   length prefix) is covered by a CRC32; the header carries its
//!   own. A torn tail truncates to the last valid frame (counted
//!   `store.frame.torn`); a CRC mismatch quarantines the file to
//!   `<path>.corrupt` and returns a typed error so callers fall back
//!   to a counted recompute.
//! - **Durable saves.** tmp write → `sync_all` → rename → parent
//!   directory fsync, so a completed [`StoreFile::save`] survives
//!   power loss.
//! - **Bitwise float fidelity.** `f64` payloads are stored as raw
//!   IEEE bits — resumed training state is identical down to the
//!   last NaN payload bit, which JSON cannot promise.
//!
//! Layering: this crate depends only on the serde shim and
//! `forumcast-obs` (counters). Fault *sites* live in
//! `forumcast-resilience`, which maps fired probes into
//! [`SaveOptions`] here — keeping the store itself dependency-free
//! of the resilience machinery it underpins.

pub mod codec;
pub mod crc32;
pub mod frame;
pub mod varint;

pub use codec::{decode_value, encode_value, CodecError, MAX_DEPTH};
pub use crc32::crc32;
pub use frame::{
    corrupt_path, frame_bytes, header_bytes, is_store_bytes, quarantine, reclaim_tmp, scan,
    Corruption, FrameIssue, FrameReader, SaveOptions, Scan, StoreError, StoreFile, FORMAT_VERSION,
    MAGIC,
};

use serde::{Deserialize, Serialize};
use std::path::Path;

/// Everything that can go wrong turning a frame back into a typed
/// record: container-level damage or a payload that fails either the
/// codec or the type's own `from_value` validation.
#[derive(Debug)]
pub enum RecordError {
    /// File/frame-level failure (I/O, magic, CRC, version).
    Store(StoreError),
    /// Frame payload is not a well-formed encoded value.
    Codec {
        /// Zero-based frame index.
        frame: usize,
        /// Codec failure.
        source: CodecError,
    },
    /// The decoded value failed the type's `from_value` validation.
    Decode {
        /// Zero-based frame index.
        frame: usize,
        /// Validation failure message.
        message: String,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Store(e) => e.fmt(f),
            RecordError::Codec { frame, source } => {
                write!(f, "frame {frame} payload malformed: {source}")
            }
            RecordError::Decode { frame, message } => {
                write!(f, "frame {frame} failed validation: {message}")
            }
        }
    }
}

impl std::error::Error for RecordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecordError::Store(e) => Some(e),
            RecordError::Codec { source, .. } => Some(source),
            RecordError::Decode { .. } => None,
        }
    }
}

impl From<StoreError> for RecordError {
    fn from(e: StoreError) -> Self {
        RecordError::Store(e)
    }
}

/// Encodes one `Serialize` record into frame-payload bytes.
pub fn record_to_bytes<T: Serialize>(record: &T) -> Vec<u8> {
    encode_value(&record.to_value())
}

/// Decodes frame-payload bytes back into a typed record, running the
/// type's own `from_value` validation.
///
/// # Errors
///
/// [`RecordError::Codec`] or [`RecordError::Decode`]; `frame`
/// contextualizes errors when decoding one of many frames.
pub fn record_from_bytes<T: Deserialize>(bytes: &[u8], frame: usize) -> Result<T, RecordError> {
    let value = decode_value(bytes).map_err(|source| RecordError::Codec { frame, source })?;
    T::from_value(&value).map_err(|e| RecordError::Decode {
        frame,
        message: e.to_string(),
    })
}

/// Saves `records` as one store file, one frame per record.
///
/// # Errors
///
/// [`StoreError`] from the underlying save.
pub fn save_records<T: Serialize>(
    path: &Path,
    fingerprint: &str,
    records: &[T],
    opts: &SaveOptions,
) -> Result<u64, StoreError> {
    let frames = records.iter().map(record_to_bytes).collect();
    StoreFile::new(fingerprint, frames).save(path, opts)
}

/// Loads a store file and decodes every frame of its valid prefix,
/// returning the fingerprint alongside the records.
///
/// # Errors
///
/// [`RecordError`] on container damage or payload decode failure.
pub fn load_records<T: Deserialize>(path: &Path) -> Result<(String, Vec<T>), RecordError> {
    let store = StoreFile::load(path)?;
    let mut records = Vec::with_capacity(store.frames.len());
    for (i, frame) in store.frames.iter().enumerate() {
        records.push(record_from_bytes(frame, i)?);
    }
    Ok((store.fingerprint, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    #[derive(Debug, PartialEq)]
    struct Rec {
        id: u64,
        score: f64,
    }

    impl Serialize for Rec {
        fn to_value(&self) -> Value {
            Value::Object(vec![
                ("id".into(), Value::U64(self.id)),
                ("score".into(), Value::F64(self.score)),
            ])
        }
    }

    impl Deserialize for Rec {
        fn from_value(v: &Value) -> Result<Self, serde::DeError> {
            let fields = serde::expect_object(v, "Rec")?;
            let id = match serde::obj_get(fields, "id") {
                Some(Value::U64(n)) => *n,
                Some(Value::I64(n)) if *n >= 0 => *n as u64,
                _ => return Err(serde::DeError::custom("Rec.id")),
            };
            let score = match serde::obj_get(fields, "score") {
                Some(Value::F64(f)) => *f,
                _ => return Err(serde::DeError::custom("Rec.score")),
            };
            Ok(Rec { id, score })
        }
    }

    #[test]
    fn typed_records_roundtrip_through_a_file() {
        let dir = std::env::temp_dir().join(format!("forumcast-store-rec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("recs.ckpt");

        let records = vec![
            Rec { id: 1, score: 0.25 },
            Rec {
                id: 2,
                score: -1.5e-300,
            },
        ];
        save_records(&path, "rec-fp", &records, &SaveOptions::default()).expect("save");
        let (fp, back): (String, Vec<Rec>) = load_records(&path).expect("load");
        assert_eq!(fp, "rec-fp");
        assert_eq!(back, records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validation_failure_is_a_typed_decode_error() {
        // A frame that decodes as a Value but fails Rec::from_value.
        let bytes = encode_value(&Value::Object(vec![("id".into(), Value::U64(1))]));
        let err = record_from_bytes::<Rec>(&bytes, 3).expect_err("missing score");
        assert!(matches!(err, RecordError::Decode { frame: 3, .. }), "{err}");
    }
}
