//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) — the checksum
//! guarding every frame and the file header of the binary store.
//!
//! Implemented from scratch (the workspace is offline) as the
//! classic reflected table-driven algorithm. CRC-32 detects **every**
//! single-bit error and every burst error up to 32 bits regardless of
//! message length — exactly the failure modes a torn or bit-flipped
//! checkpoint produces — which is what lets the corruption proptest
//! sweep promise "no silent load of mutated bytes".

/// 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// A streaming CRC-32 accumulator.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// Finalizes and returns the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CRC-32 "check" value from the catalogue of parametrised
    /// CRC algorithms: CRC-32/ISO-HDLC over ASCII "123456789".
    #[test]
    fn reference_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    /// The property the store leans on: flipping any single bit of a
    /// message changes its CRC.
    #[test]
    fn every_single_bit_flip_changes_the_crc() {
        let data: Vec<u8> = (0..97u8).collect();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut mutated = data.clone();
                mutated[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&mutated),
                    clean,
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }
}
