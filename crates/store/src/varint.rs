//! LEB128 variable-length integers — the length and integer encoding
//! of the store's postcard-style payload codec.
//!
//! `u64` values are encoded little-endian base-128 (7 bits per byte,
//! high bit = continuation); `i64` values are zigzag-mapped first so
//! small negative numbers stay small. Encodings are canonical on the
//! write side (minimal length); the decoder is *total*: any byte
//! slice either yields a value and a consumed length or a
//! [`VarintError`], never a panic.

/// Maximum encoded length of a `u64` (ceil(64 / 7) bytes).
pub const MAX_LEN: usize = 10;

/// Decode failure: the input ended mid-varint or overflowed 64 bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarintError {
    /// Input ended while the continuation bit was still set.
    Truncated,
    /// More than 64 significant bits.
    Overflow,
}

impl std::fmt::Display for VarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarintError::Truncated => f.write_str("varint truncated"),
            VarintError::Overflow => f.write_str("varint overflows u64"),
        }
    }
}

impl std::error::Error for VarintError {}

/// Appends the LEB128 encoding of `value` to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends the zigzag-LEB128 encoding of `value` to `out`.
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    write_u64(out, zigzag(value));
}

/// Reads a LEB128 `u64` from the front of `bytes`, returning the
/// value and the number of bytes consumed.
///
/// # Errors
///
/// [`VarintError::Truncated`] if `bytes` ends mid-varint,
/// [`VarintError::Overflow`] if the encoding carries more than 64
/// significant bits.
pub fn read_u64(bytes: &[u8]) -> Result<(u64, usize), VarintError> {
    let mut value: u64 = 0;
    for (i, &byte) in bytes.iter().enumerate().take(MAX_LEN) {
        let payload = u64::from(byte & 0x7F);
        let shift = 7 * i as u32;
        // The tenth byte may only contribute the lowest significant
        // bit (64 = 9*7 + 1); anything more overflows.
        if shift == 63 && payload > 1 {
            return Err(VarintError::Overflow);
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
    }
    if bytes.len() >= MAX_LEN {
        Err(VarintError::Overflow)
    } else {
        Err(VarintError::Truncated)
    }
}

/// Reads a zigzag-LEB128 `i64` from the front of `bytes`.
///
/// # Errors
///
/// Same conditions as [`read_u64`].
pub fn read_i64(bytes: &[u8]) -> Result<(i64, usize), VarintError> {
    let (raw, used) = read_u64(bytes)?;
    Ok((unzigzag(raw), used))
}

fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

fn unzigzag(raw: u64) -> i64 {
    ((raw >> 1) as i64) ^ -((raw & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u64(v: u64) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        let (back, used) = read_u64(&buf).expect("decode");
        assert_eq!(back, v);
        assert_eq!(used, buf.len());
    }

    fn roundtrip_i64(v: i64) {
        let mut buf = Vec::new();
        write_i64(&mut buf, v);
        let (back, used) = read_i64(&buf).expect("decode");
        assert_eq!(back, v);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn u64_boundaries_roundtrip() {
        for v in [
            0,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            roundtrip_u64(v);
        }
    }

    #[test]
    fn i64_boundaries_roundtrip() {
        for v in [0, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN] {
            roundtrip_i64(v);
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_i64(&mut buf, -64);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::from(u32::MAX));
        for cut in 0..buf.len() {
            assert_eq!(read_u64(&buf[..cut]), Err(VarintError::Truncated));
        }
    }

    #[test]
    fn overlong_input_is_an_overflow() {
        // Eleven continuation bytes: more than any u64 encoding.
        let buf = [0x80u8; 11];
        assert_eq!(read_u64(&buf), Err(VarintError::Overflow));
        // Ten bytes whose last carries more than the one allowed bit.
        let mut buf = [0x80u8; 10];
        buf[9] = 0x02;
        assert_eq!(read_u64(&buf), Err(VarintError::Overflow));
    }

    #[test]
    fn max_u64_is_ten_bytes() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), MAX_LEN);
    }
}
