//! Corruption sweep: the store's "no silent garbage" contract.
//!
//! Exhaustive part: for one representative saved store file, *every*
//! single-byte truncation and *every* single-bit flip must either be
//! detected (typed error from `scan`/`load`) or yield a prefix of
//! the original frames — never a successful load containing mutated
//! payload bytes.
//!
//! Property part: the same holds for randomly generated stores
//! (random fingerprints, frame counts, payload sizes) under random
//! truncation points and bit flips.

use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

use forumcast_store::{scan, FrameIssue, StoreFile};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("forumcast-sweep-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

/// The acceptance predicate: a mutated byte image must scan to
/// either a typed error or an exact prefix of the original frames.
/// Panics (failing the test) on any other outcome — in particular a
/// "successful" scan whose frames differ from a clean prefix.
fn assert_no_silent_garbage(original: &StoreFile, mutated: &[u8], what: &str) {
    match scan(mutated, Path::new("sweep.ckpt")) {
        Err(_) => {} // typed detection: NotAStore / HeaderCorrupt / UnsupportedVersion
        Ok(report) => {
            // Frame-level damage must leave only a clean prefix.
            assert!(
                report.frames.len() <= original.frames.len(),
                "{what}: scan returned more frames than were written"
            );
            for (i, frame) in report.frames.iter().enumerate() {
                assert_eq!(
                    frame, &original.frames[i],
                    "{what}: frame {i} surfaced with mutated bytes"
                );
            }
            // If nothing was reported wrong, the full file must be
            // byte-identical in its recovered content.
            if report.issue.is_none() {
                // A flip confined to the fingerprint would have
                // failed the header CRC; a flip in a frame fails its
                // CRC. So an issue-free scan means the mutation was
                // a truncation at an exact frame boundary (or
                // removed trailing frames) — frames already checked
                // as a clean prefix above.
                assert_eq!(
                    report.fingerprint, original.fingerprint,
                    "{what}: fingerprint silently mutated"
                );
                assert_eq!(report.version, original.version, "{what}: version mutated");
            }
        }
    }
}

fn representative_store() -> StoreFile {
    StoreFile::new(
        "sweep-fp dim=18+2K folds=10",
        vec![
            vec![],                // empty frame
            b"short".to_vec(),     // small frame
            (0u8..=255).collect(), // all byte values
            vec![0xFF; 64],        // run of ones
            vec![0x00; 64],        // run of zeros
        ],
    )
}

#[test]
fn every_single_byte_truncation_is_detected_or_a_clean_prefix() {
    let store = representative_store();
    let bytes = store.encode();
    for cut in 0..bytes.len() {
        assert_no_silent_garbage(&store, &bytes[..cut], &format!("truncate at {cut}"));
    }
}

#[test]
fn every_single_bit_flip_is_detected_or_a_clean_prefix() {
    let store = representative_store();
    let bytes = store.encode();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[byte] ^= 1 << bit;
            assert_no_silent_garbage(&store, &mutated, &format!("flip byte {byte} bit {bit}"));
        }
    }
}

/// `load` (the counting/quarantining path) under every bit flip:
/// never returns mutated payloads either. Run against a real file on
/// disk because load's contract includes the quarantine rename.
#[test]
fn load_never_returns_mutated_payloads_under_bit_flips() {
    let dir = tmp_dir("load-flips");
    let store = representative_store();
    let clean = store.encode();
    let path = dir.join("sweep.ckpt");
    // Sample every 11th bit to keep the on-disk loop fast; scan-level
    // exhaustiveness is covered above and load is a thin policy layer
    // over scan.
    for flip in (0..clean.len() * 8).step_by(11) {
        let mut mutated = clean.clone();
        mutated[flip / 8] ^= 1 << (flip % 8);
        fs::write(&path, &mutated).expect("write mutated");
        match StoreFile::load(&path) {
            Err(_) => {}
            Ok(loaded) => {
                assert!(loaded.frames.len() <= store.frames.len());
                for (i, frame) in loaded.frames.iter().enumerate() {
                    assert_eq!(frame, &store.frames[i], "flip {flip}: mutated frame {i}");
                }
            }
        }
        // Reset for the next iteration: the load may have renamed
        // the file to `<path>.corrupt` (`corrupt_path` returns the
        // first *free* slot, so remove the literal destination).
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(path.with_extension("ckpt.corrupt"));
    }
    fs::remove_dir_all(&dir).ok();
}

fn arb_store() -> impl Strategy<Value = StoreFile> {
    (
        "[a-z0-9 =+]{0,40}",
        proptest::collection::vec(proptest::collection::vec(0u8..=255u8, 0..200), 0..8),
    )
        .prop_map(|(fp, frames)| StoreFile::new(fp, frames))
}

proptest! {
    #[test]
    fn random_truncations_never_yield_garbage(
        store in arb_store(),
        cut_seed in 0usize..usize::MAX,
    ) {
        let bytes = store.encode();
        let cut = cut_seed % bytes.len().max(1);
        assert_no_silent_garbage(&store, &bytes[..cut], &format!("truncate at {cut}"));
    }

    #[test]
    fn random_bit_flips_never_yield_garbage(
        store in arb_store(),
        flip_seed in 0usize..usize::MAX,
    ) {
        let bytes = store.encode();
        let total_bits = bytes.len() * 8;
        let flip = flip_seed % total_bits.max(1);
        let mut mutated = bytes;
        mutated[flip / 8] ^= 1 << (flip % 8);
        assert_no_silent_garbage(&store, &mutated, &format!("flip bit {flip}"));
    }

    /// Torn saves (the injected fault) are always recoverable as a
    /// strict prefix — and the torn tail is reported, never silently
    /// absorbed, whenever the final frame is incomplete.
    #[test]
    fn torn_saves_scan_to_a_strict_prefix(store in arb_store()) {
        let bytes = store.encode();
        let full = scan(&bytes, Path::new("t.ckpt")).expect("clean scan");
        prop_assert_eq!(full.frames.len(), store.frames.len());
        prop_assert!(full.issue.is_none());

        // Cutting the final CRC byte leaves the last frame
        // incomplete: frames shrink by exactly one and the tear is
        // flagged.
        if !store.frames.is_empty() {
            let report = scan(&bytes[..bytes.len() - 1], Path::new("t.ckpt"))
                .expect("scannable");
            prop_assert_eq!(report.frames.len(), store.frames.len() - 1);
            prop_assert!(matches!(report.issue, Some(FrameIssue::Torn { .. })));
        }
    }
}
