//! Latent Dirichlet Allocation topic modeling for `forumcast`.
//!
//! The paper (Section II-B) infers a topic distribution
//! `d(p) = (d_1(p), …, d_K(p))` for every forum post `p` by running
//! LDA over the post's word text, treating each post as a separate
//! document, with `K = 8` topics by default (varied in Figure 5).
//! The paper uses Gensim's LDA; this crate implements the same model
//! from scratch with **collapsed Gibbs sampling** (see DESIGN.md §3
//! for why the substitution is behavior-preserving).
//!
//! * [`LdaConfig`] — hyperparameters (`K`, `α`, `β`, iterations, seed);
//! * [`LdaModel::train`] — collapsed Gibbs training over a
//!   [`forumcast_text::Corpus`];
//! * [`LdaModel::infer`] — fold-in inference of `d(p)` for held-out
//!   posts with the topic–word distributions held fixed;
//! * [`tv_similarity`] — the total-variation similarity
//!   `1 − ½‖d − d'‖₁` used by features (x), (xi), (xiii).
//!
//! # Example
//!
//! ```
//! use forumcast_text::{tokenize, Corpus, Vocabulary};
//! use forumcast_topics::{LdaConfig, LdaModel};
//!
//! let docs: Vec<Vec<String>> = ["cats purr softly", "dogs bark loudly", "cats and dogs"]
//!     .iter()
//!     .map(|d| tokenize(d))
//!     .collect();
//! let mut vocab = Vocabulary::new();
//! for d in &docs {
//!     vocab.observe(d);
//! }
//! let corpus = Corpus::from_token_docs(&docs, &vocab);
//! let model = LdaModel::train(&corpus, &LdaConfig::new(2).with_iterations(50).with_seed(7));
//! let theta = model.doc_topics(0);
//! assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```

pub mod lda;
pub mod perplexity;
pub mod similarity;

pub use lda::{LdaConfig, LdaModel, LdaSampler};
pub use perplexity::{doc_log_likelihood, perplexity};
pub use similarity::{mean_distribution, tv_similarity};
