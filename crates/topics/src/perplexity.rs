//! Held-out perplexity — the standard yardstick for choosing the
//! topic count `K` (the knob the paper sweeps in Figure 5).

use forumcast_text::{BagOfWords, Corpus};

use crate::lda::LdaModel;

/// Per-word log-likelihood of a held-out document under the model:
/// each token is scored by `ln Σ_k θ_k φ_{k,w}` with `θ` inferred by
/// fold-in Gibbs. Out-of-vocabulary tokens are skipped; returns 0 for
/// an effectively empty document.
pub fn doc_log_likelihood(model: &LdaModel, doc: &BagOfWords, seed: u64) -> f64 {
    let theta = model.infer(doc, seed);
    let mut ll = 0.0;
    for (w, count) in doc.iter() {
        if w >= model.num_words() {
            continue;
        }
        let p: f64 = (0..model.num_topics())
            .map(|k| theta[k] * model.topic_words(k)[w])
            .sum();
        ll += count as f64 * p.max(1e-300).ln();
    }
    ll
}

/// Corpus perplexity `exp(−Σ ln p(w) / Σ tokens)`. Lower is better;
/// `f64::INFINITY` when the corpus has no in-vocabulary tokens.
///
/// # Example
///
/// ```
/// use forumcast_text::{BagOfWords, Corpus};
/// use forumcast_topics::{perplexity, LdaConfig, LdaModel};
///
/// let docs: Vec<BagOfWords> = (0..8).map(|d| BagOfWords::from_ids(&[d % 4, (d + 1) % 4])).collect();
/// let corpus = Corpus::from_bows(docs, 4);
/// let model = LdaModel::train(&corpus, &LdaConfig::new(2).with_iterations(30));
/// let ppl = perplexity(&model, &corpus, 1);
/// assert!(ppl.is_finite() && ppl >= 1.0);
/// ```
pub fn perplexity(model: &LdaModel, corpus: &Corpus, seed: u64) -> f64 {
    let mut ll = 0.0;
    let mut tokens = 0u64;
    for (i, doc) in corpus.iter().enumerate() {
        ll += doc_log_likelihood(model, doc, seed.wrapping_add(i as u64));
        tokens += doc
            .iter()
            .filter(|&(w, _)| w < model.num_words())
            .map(|(_, c)| c as u64)
            .sum::<u64>();
    }
    if tokens == 0 {
        return f64::INFINITY;
    }
    (-ll / tokens as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lda::LdaConfig;

    fn separable() -> Corpus {
        let docs: Vec<BagOfWords> = (0..20)
            .map(|i| {
                let base = if i % 2 == 0 { 0 } else { 4 };
                BagOfWords::from_ids(&[base, base + 1, base + 2, base + 3, base, base + 1])
            })
            .collect();
        Corpus::from_bows(docs, 8)
    }

    #[test]
    fn perplexity_bounded_by_vocabulary() {
        let corpus = separable();
        let model = LdaModel::train(&corpus, &LdaConfig::new(2).with_iterations(50));
        let ppl = perplexity(&model, &corpus, 3);
        // A model that has learned the two themes needs far fewer than
        // the 8 "effective words" of a uniform model.
        assert!(ppl > 1.0 && ppl < 8.0, "perplexity {ppl}");
    }

    #[test]
    fn trained_model_beats_undertrained() {
        let corpus = separable();
        let bad = LdaModel::train(&corpus, &LdaConfig::new(2).with_iterations(0));
        let good = LdaModel::train(&corpus, &LdaConfig::new(2).with_iterations(80));
        assert!(
            perplexity(&good, &corpus, 1) <= perplexity(&bad, &corpus, 1) + 0.5,
            "training should not hurt perplexity"
        );
    }

    #[test]
    fn empty_corpus_is_infinite() {
        let corpus = separable();
        let model = LdaModel::train(&corpus, &LdaConfig::new(2).with_iterations(10));
        let empty = Corpus::from_bows(vec![BagOfWords::from_ids(&[])], 8);
        assert!(perplexity(&model, &empty, 0).is_infinite());
    }

    #[test]
    fn oov_tokens_are_skipped() {
        let corpus = separable();
        let model = LdaModel::train(&corpus, &LdaConfig::new(2).with_iterations(10));
        let doc = BagOfWords::from_ids(&[0, 100, 200]);
        let ll = doc_log_likelihood(&model, &doc, 0);
        assert!(ll.is_finite() && ll < 0.0);
    }
}
