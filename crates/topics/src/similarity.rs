//! Total-variation similarity between topic distributions.

/// Total-variation similarity `s = 1 − ½‖a − b‖₁` between two
/// probability distributions of the same length (paper features x,
/// xi, xiii).
///
/// For valid distributions the result lies in `[0, 1]`: 1 when the
/// distributions are identical and 0 when they have disjoint support.
///
/// # Panics
///
/// Panics when the slices have different lengths.
///
/// # Example
///
/// ```
/// use forumcast_topics::tv_similarity;
/// assert_eq!(tv_similarity(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
/// assert_eq!(tv_similarity(&[0.5, 0.5], &[0.5, 0.5]), 1.0);
/// ```
pub fn tv_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "distributions must have equal length ({} vs {})",
        a.len(),
        b.len()
    );
    let l1: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
    1.0 - 0.5 * l1
}

/// Element-wise mean of a set of distributions, e.g. the "topics
/// answered" user feature (v), `d_u = mean{d(p_{q,i})}`.
///
/// Returns the uniform distribution over `k` outcomes when `dists` is
/// empty (the natural prior for a user with no history).
///
/// # Panics
///
/// Panics when the distributions have inconsistent lengths, or when
/// `dists` is empty and `k == 0`.
///
/// # Example
///
/// ```
/// use forumcast_topics::mean_distribution;
/// let m = mean_distribution(&[vec![1.0, 0.0], vec![0.0, 1.0]], 2);
/// assert_eq!(m, vec![0.5, 0.5]);
/// ```
pub fn mean_distribution(dists: &[Vec<f64>], k: usize) -> Vec<f64> {
    if dists.is_empty() {
        assert!(k > 0, "cannot build a distribution over zero topics");
        return vec![1.0 / k as f64; k];
    }
    let len = dists[0].len();
    let mut mean = vec![0.0; len];
    for d in dists {
        assert_eq!(d.len(), len, "inconsistent distribution lengths");
        for (m, &x) in mean.iter_mut().zip(d) {
            *m += x;
        }
    }
    let n = dists.len() as f64;
    for m in &mut mean {
        *m /= n;
    }
    mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_similarity_one() {
        let d = vec![0.2, 0.3, 0.5];
        assert!((tv_similarity(&d, &d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_distributions_have_similarity_zero() {
        assert!(tv_similarity(&[1.0, 0.0, 0.0], &[0.0, 0.5, 0.5]).abs() < 1e-12);
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = [0.7, 0.2, 0.1];
        let b = [0.1, 0.1, 0.8];
        assert_eq!(tv_similarity(&a, &b), tv_similarity(&b, &a));
    }

    #[test]
    fn partial_overlap_value() {
        // |0.5-0.0| + |0.5-0.5| + |0.0-0.5| = 1.0 → s = 0.5
        assert!((tv_similarity(&[0.5, 0.5, 0.0], &[0.0, 0.5, 0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        tv_similarity(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn mean_of_empty_is_uniform() {
        assert_eq!(mean_distribution(&[], 4), vec![0.25; 4]);
    }

    #[test]
    fn mean_averages_elementwise() {
        let m = mean_distribution(&[vec![0.8, 0.2], vec![0.2, 0.8], vec![0.5, 0.5]], 2);
        assert!((m[0] - 0.5).abs() < 1e-12);
        assert!((m[1] - 0.5).abs() < 1e-12);
    }
}
