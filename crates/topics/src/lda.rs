//! Collapsed Gibbs sampling for Latent Dirichlet Allocation.
//!
//! Two samplers share the same model: the [`Dense`](LdaSampler::Dense)
//! reference path evaluates the full `K`-term conditional per token,
//! while the [`Sparse`](LdaSampler::Sparse) path uses the SparseLDA
//! decomposition (Yao, Mimno & McCallum, KDD 2009) of the collapsed
//! conditional
//!
//! ```text
//! p(z = k) ∝ (n_dk + α)(n_kw + β) / (n_k + Vβ)
//!          =  αβ / (n_k + Vβ)            — smoothing bucket `s`
//!          +  n_dk · β / (n_k + Vβ)      — document bucket `r`
//!          + (n_dk + α) n_kw / (n_k + Vβ) — word bucket `q`
//! ```
//!
//! into three buckets whose partial sums are maintained incrementally,
//! so resampling a token only walks the document's active topics and
//! the word's nonzero topics instead of all `K`. Both samplers draw
//! from the *exact same* conditional distribution; the sparse path is
//! deterministic given the seed but follows a different (equally
//! valid) Gibbs trajectory than dense, so the two are compared by
//! perplexity/total-variation parity rather than bitwise equality.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use forumcast_text::{BagOfWords, Corpus};

/// Which Gibbs sampler [`LdaModel::train`] and [`LdaModel::infer`]
/// use. `Dense` is the original reference implementation; `Sparse`
/// samples the identical conditional with SparseLDA bucket sums.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LdaSampler {
    /// Full `K`-term conditional per token (reference path; bitwise
    /// identical to the historical implementation).
    #[default]
    Dense,
    /// SparseLDA three-bucket sampler (`s`/`r`/`q` partial sums).
    Sparse,
}

impl std::str::FromStr for LdaSampler {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(LdaSampler::Dense),
            "sparse" => Ok(LdaSampler::Sparse),
            other => Err(format!("unknown sampler `{other}` (dense|sparse)")),
        }
    }
}

impl std::fmt::Display for LdaSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LdaSampler::Dense => "dense",
            LdaSampler::Sparse => "sparse",
        })
    }
}

/// Hyperparameters for [`LdaModel::train`].
///
/// Defaults follow common practice (`α = 50/K`, `β = 0.01`) and the
/// paper's `K = 8`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LdaConfig {
    /// Number of topics `K`.
    pub num_topics: usize,
    /// Symmetric Dirichlet prior on document–topic distributions.
    pub alpha: f64,
    /// Symmetric Dirichlet prior on topic–word distributions.
    pub beta: f64,
    /// Gibbs sweeps over the corpus during training.
    pub iterations: usize,
    /// Gibbs sweeps for fold-in inference of held-out documents.
    pub infer_iterations: usize,
    /// RNG seed (training is deterministic given the seed).
    pub seed: u64,
    /// Gibbs sampler implementation (missing in configs saved before
    /// the sparse path existed, so it defaults to `Dense`).
    #[serde(default)]
    pub sampler: LdaSampler,
}

impl LdaConfig {
    /// Creates a config with `K` topics and default priors.
    ///
    /// # Panics
    ///
    /// Panics when `num_topics == 0`.
    pub fn new(num_topics: usize) -> Self {
        assert!(num_topics > 0, "LDA requires at least one topic");
        // Gensim's default symmetric prior is 1/K; forum posts are
        // short documents, so a weak prior keeps θ concentrated.
        LdaConfig {
            num_topics,
            alpha: 1.0 / num_topics as f64,
            beta: 0.01,
            iterations: 200,
            infer_iterations: 30,
            seed: 0xF0CA,
            sampler: LdaSampler::Dense,
        }
    }

    /// Sets the number of training sweeps.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the Dirichlet priors.
    pub fn with_priors(mut self, alpha: f64, beta: f64) -> Self {
        self.alpha = alpha;
        self.beta = beta;
        self
    }

    /// Sets the Gibbs sampler implementation.
    pub fn with_sampler(mut self, sampler: LdaSampler) -> Self {
        self.sampler = sampler;
        self
    }
}

impl Default for LdaConfig {
    /// The paper's default of `K = 8` topics.
    fn default() -> Self {
        LdaConfig::new(8)
    }
}

/// A trained LDA model: topic–word distributions `φ` plus the
/// document–topic distributions `θ` of the training corpus.
///
/// Both matrices are stored as contiguous row-major buffers (`φ` is
/// `K × V`, `θ` is `D × K`) so sweeps and lookups stay on a single
/// cache-friendly allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LdaModel {
    config: LdaConfig,
    num_words: usize,
    /// Row-major `K × V`: `phi[k * V + w]` — probability of word `w`
    /// under topic `k` (smoothed point estimate from the final Gibbs
    /// state).
    phi: Vec<f64>,
    /// Row-major `D × K`: `theta[d * K + k]` — topic distribution of
    /// training document `d`.
    theta: Vec<f64>,
}

/// Per-sampler bucket-hit tallies, accumulated locally during a sweep
/// and flushed to the obs counters in one batch (the counter sink is
/// a global mutex — per-token updates would serialize the hot loop).
#[derive(Default)]
struct BucketHits {
    s: u64,
    r: u64,
    q: u64,
}

impl BucketHits {
    fn flush(&self) {
        if self.s > 0 {
            forumcast_obs::counter_add("lda.sparse.bucket_hits.s", self.s);
        }
        if self.r > 0 {
            forumcast_obs::counter_add("lda.sparse.bucket_hits.r", self.r);
        }
        if self.q > 0 {
            forumcast_obs::counter_add("lda.sparse.bucket_hits.q", self.q);
        }
    }
}

impl LdaModel {
    /// Trains LDA on `corpus` by collapsed Gibbs sampling.
    ///
    /// Each token's topic assignment `z` is resampled
    /// `config.iterations` times from
    /// `p(z = k) ∝ (n_{dk} + α) · (n_{kw} + β) / (n_k + Vβ)`
    /// with the token's own assignment excluded. The returned model
    /// stores smoothed point estimates of `φ` and `θ` from the final
    /// state.
    ///
    /// Empty documents receive the uniform topic distribution.
    pub fn train(corpus: &Corpus, config: &LdaConfig) -> LdaModel {
        let _span = forumcast_obs::span("lda.train");
        let k = config.num_topics;
        let v = corpus.num_words().max(1);
        let d = corpus.num_docs();
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Token-level view of the corpus, flattened to one contiguous
        // buffer with per-document offsets (CSR layout).
        let mut tokens: Vec<u32> = Vec::new();
        let mut doc_offsets: Vec<usize> = Vec::with_capacity(d + 1);
        doc_offsets.push(0);
        for bow in corpus.iter() {
            for w in bow.to_token_ids() {
                tokens.push(w as u32);
            }
            doc_offsets.push(tokens.len());
        }
        // Topic assignment per token, initialized uniformly at random
        // (document order, so the init stream matches the historical
        // nested-vec layout bit for bit).
        let mut z: Vec<u32> = tokens.iter().map(|_| rng.gen_range(0..k) as u32).collect();

        let mut n_dk = vec![0u32; d * k]; // doc–topic counts, row-major D × K
        let mut n_kw = vec![0u32; k * v]; // topic–word counts, row-major K × V
        let mut n_k = vec![0u64; k]; // topic totals
        for di in 0..d {
            for ti in doc_offsets[di]..doc_offsets[di + 1] {
                let w = tokens[ti] as usize;
                let t = z[ti] as usize;
                n_dk[di * k + t] += 1;
                n_kw[t * v + w] += 1;
                n_k[t] += 1;
            }
        }

        match config.sampler {
            LdaSampler::Dense => dense_sweeps(
                config,
                &tokens,
                &doc_offsets,
                &mut z,
                &mut n_dk,
                &mut n_kw,
                &mut n_k,
                v,
                &mut rng,
            ),
            LdaSampler::Sparse => sparse_sweeps(
                config,
                &tokens,
                &doc_offsets,
                &mut z,
                &mut n_dk,
                &mut n_kw,
                &mut n_k,
                v,
                &mut rng,
            ),
        }
        if !tokens.is_empty() && config.iterations > 0 {
            forumcast_obs::counter_add(
                "lda.gibbs.tokens",
                tokens.len() as u64 * config.iterations as u64,
            );
        }

        // Point estimates.
        let alpha = config.alpha;
        let beta = config.beta;
        let vbeta = v as f64 * beta;
        let mut phi = vec![0.0f64; k * v];
        for t in 0..k {
            let denom = n_k[t] as f64 + vbeta;
            for w in 0..v {
                phi[t * v + w] = (n_kw[t * v + w] as f64 + beta) / denom;
            }
        }
        let mut theta = vec![0.0f64; d * k];
        for di in 0..d {
            let row = &n_dk[di * k..(di + 1) * k];
            let len: u32 = row.iter().sum();
            let denom = len as f64 + k as f64 * alpha;
            for t in 0..k {
                theta[di * k + t] = (row[t] as f64 + alpha) / denom;
            }
        }

        LdaModel {
            config: config.clone(),
            num_words: v,
            phi,
            theta,
        }
    }

    /// Number of topics `K`.
    pub fn num_topics(&self) -> usize {
        self.config.num_topics
    }

    /// Vocabulary size the model was trained against.
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// Number of training documents.
    pub fn num_docs(&self) -> usize {
        self.theta.len() / self.config.num_topics
    }

    /// The training configuration.
    pub fn config(&self) -> &LdaConfig {
        &self.config
    }

    /// Topic distribution `θ_d` of training document `d`.
    ///
    /// # Panics
    ///
    /// Panics when `doc` is out of range.
    pub fn doc_topics(&self, doc: usize) -> &[f64] {
        let k = self.config.num_topics;
        &self.theta[doc * k..(doc + 1) * k]
    }

    /// Topic–word distribution `φ_k`.
    ///
    /// # Panics
    ///
    /// Panics when `topic >= K`.
    pub fn topic_words(&self, topic: usize) -> &[f64] {
        &self.phi[topic * self.num_words..(topic + 1) * self.num_words]
    }

    /// Infers the topic distribution of a held-out document by fold-in
    /// Gibbs sampling with `φ` fixed:
    /// `p(z = k) ∝ (n_{dk} + α) · φ_{k,w}`.
    ///
    /// Word ids outside the training vocabulary are skipped; an empty
    /// (or fully out-of-vocabulary) document yields the uniform
    /// distribution. Inference is deterministic given `seed`.
    pub fn infer(&self, doc: &BagOfWords, seed: u64) -> Vec<f64> {
        forumcast_obs::counter_add("lda.infer.docs", 1);
        let k = self.config.num_topics;
        let tokens: Vec<usize> = doc
            .to_token_ids()
            .into_iter()
            .filter(|&w| w < self.num_words)
            .collect();
        if tokens.is_empty() {
            return vec![1.0 / k as f64; k];
        }
        let n_dk = match self.config.sampler {
            LdaSampler::Dense => self.infer_counts_dense(&tokens, seed),
            LdaSampler::Sparse => self.infer_counts_sparse(&tokens, seed),
        };
        let alpha = self.config.alpha;
        let denom = tokens.len() as f64 + k as f64 * alpha;
        (0..k).map(|t| (n_dk[t] as f64 + alpha) / denom).collect()
    }

    /// Reference fold-in: the full `K`-term conditional per token.
    fn infer_counts_dense(&self, tokens: &[usize], seed: u64) -> Vec<u32> {
        let k = self.config.num_topics;
        let v = self.num_words;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut z: Vec<usize> = tokens.iter().map(|_| rng.gen_range(0..k)).collect();
        let mut n_dk = vec![0u32; k];
        for &t in &z {
            n_dk[t] += 1;
        }
        let alpha = self.config.alpha;
        let mut probs = vec![0.0f64; k];
        for _sweep in 0..self.config.infer_iterations {
            for (ti, &w) in tokens.iter().enumerate() {
                let old = z[ti];
                n_dk[old] -= 1;
                let mut total = 0.0;
                for t in 0..k {
                    let p = (n_dk[t] as f64 + alpha) * self.phi[t * v + w];
                    probs[t] = p;
                    total += p;
                }
                let new = sample_index(&probs, total, &mut rng);
                z[ti] = new;
                n_dk[new] += 1;
            }
        }
        n_dk
    }

    /// Bucket fold-in: `p(z = k) ∝ α·φ_{k,w} + n_dk·φ_{k,w}` splits
    /// into a per-word smoothing mass `s_w = α·Σ_k φ_{k,w}` (computed
    /// once per token position, amortized over all sweeps) and a
    /// document bucket walked over the doc's active topics only.
    fn infer_counts_sparse(&self, tokens: &[usize], seed: u64) -> Vec<u32> {
        let k = self.config.num_topics;
        let v = self.num_words;
        let alpha = self.config.alpha;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut z: Vec<usize> = tokens.iter().map(|_| rng.gen_range(0..k)).collect();
        let mut n_dk = vec![0u32; k];
        for &t in &z {
            n_dk[t] += 1;
        }
        // Smoothing mass per token position; one K-walk per token for
        // the whole call instead of one per token per sweep.
        let s_w: Vec<f64> = tokens
            .iter()
            .map(|&w| alpha * (0..k).map(|t| self.phi[t * v + w]).sum::<f64>())
            .collect();
        let mut active: Vec<u32> = (0..k as u32).filter(|&t| n_dk[t as usize] > 0).collect();
        let mut hits = BucketHits::default();
        let mut degenerate = 0u64;
        for _sweep in 0..self.config.infer_iterations {
            for (ti, &w) in tokens.iter().enumerate() {
                let old = z[ti];
                n_dk[old] -= 1;
                if n_dk[old] == 0 {
                    let pos = active
                        .iter()
                        .position(|&t| t as usize == old)
                        .expect("active-topic list out of sync with document counts");
                    active.swap_remove(pos);
                }
                let mut r_sum = 0.0;
                for &t in &active {
                    r_sum += n_dk[t as usize] as f64 * self.phi[t as usize * v + w];
                }
                let total = s_w[ti] + r_sum;
                let u = rng.gen::<f64>();
                let new = if !(total.is_finite() && total > 0.0) {
                    debug_assert!(
                        false,
                        "degenerate fold-in row: total = {total} over {k} topics"
                    );
                    degenerate += 1;
                    ((u * k as f64) as usize).min(k - 1)
                } else {
                    let mut x = u * total;
                    if x < r_sum {
                        hits.r += 1;
                        let mut pick = active[active.len() - 1] as usize;
                        for &t in &active {
                            x -= n_dk[t as usize] as f64 * self.phi[t as usize * v + w];
                            if x <= 0.0 {
                                pick = t as usize;
                                break;
                            }
                        }
                        pick
                    } else {
                        hits.s += 1;
                        x -= r_sum;
                        let mut pick = k - 1;
                        for t in 0..k {
                            x -= alpha * self.phi[t * v + w];
                            if x <= 0.0 {
                                pick = t;
                                break;
                            }
                        }
                        pick
                    }
                };
                z[ti] = new;
                n_dk[new] += 1;
                if n_dk[new] == 1 {
                    active.push(new as u32);
                }
            }
        }
        hits.flush();
        if degenerate > 0 {
            forumcast_obs::counter_add("lda.sample.degenerate", degenerate);
        }
        n_dk
    }

    /// Batch fold-in inference: [`LdaModel::infer`] over many
    /// held-out documents on up to `threads` worker threads
    /// (`0` = auto). Each document carries its own seed, so every
    /// inference is independent and the output — collected in input
    /// order — is bitwise-identical for any thread count.
    pub fn infer_batch(&self, docs: &[(BagOfWords, u64)], threads: usize) -> Vec<Vec<f64>> {
        let _span = forumcast_obs::span("lda.infer_batch");
        let threads = forumcast_par::resolve_threads(threads);
        forumcast_par::parallel_map(docs, threads, |(doc, seed)| self.infer(doc, *seed))
    }

    /// The `n` highest-probability word ids of `topic` (ties broken by
    /// ascending word id), for interpretability and diagnostics.
    ///
    /// Uses a partial selection (`select_nth_unstable_by`) plus a sort
    /// of the selected slice, so the cost is `O(V + n log n)` instead
    /// of sorting the whole vocabulary.
    ///
    /// # Panics
    ///
    /// Panics when `topic >= K`.
    pub fn top_words(&self, topic: usize, n: usize) -> Vec<usize> {
        let row = self.topic_words(topic);
        let n = n.min(self.num_words);
        if n == 0 {
            return Vec::new();
        }
        let by_prob_desc_then_id =
            |a: &usize, b: &usize| row[*b].total_cmp(&row[*a]).then_with(|| a.cmp(b));
        let mut idx: Vec<usize> = (0..self.num_words).collect();
        if n < idx.len() {
            idx.select_nth_unstable_by(n - 1, by_prob_desc_then_id);
            idx.truncate(n);
        }
        idx.sort_unstable_by(by_prob_desc_then_id);
        idx
    }
}

/// The reference dense Gibbs sweeps: per token, the full `K`-term
/// conditional. Bitwise-identical to the historical implementation
/// (same RNG stream, same floating-point operation order).
#[allow(clippy::too_many_arguments)]
fn dense_sweeps(
    config: &LdaConfig,
    tokens: &[u32],
    doc_offsets: &[usize],
    z: &mut [u32],
    n_dk: &mut [u32],
    n_kw: &mut [u32],
    n_k: &mut [u64],
    v: usize,
    rng: &mut StdRng,
) {
    let k = config.num_topics;
    let alpha = config.alpha;
    let beta = config.beta;
    let vbeta = v as f64 * beta;
    let mut probs = vec![0.0f64; k];
    for _sweep in 0..config.iterations {
        forumcast_obs::counter_add("lda.gibbs.sweeps", 1);
        for di in 0..doc_offsets.len() - 1 {
            for ti in doc_offsets[di]..doc_offsets[di + 1] {
                let w = tokens[ti] as usize;
                let old = z[ti] as usize;
                n_dk[di * k + old] -= 1;
                n_kw[old * v + w] -= 1;
                n_k[old] -= 1;

                let mut total = 0.0;
                for t in 0..k {
                    let p = (n_dk[di * k + t] as f64 + alpha) * (n_kw[t * v + w] as f64 + beta)
                        / (n_k[t] as f64 + vbeta);
                    probs[t] = p;
                    total += p;
                }
                let new = sample_index(&probs, total, rng);
                z[ti] = new as u32;
                n_dk[di * k + new] += 1;
                n_kw[new * v + w] += 1;
                n_k[new] += 1;
            }
        }
    }
}

/// SparseLDA sweeps: the conditional is split into smoothing (`s`),
/// document (`r`), and word (`q`) buckets with incrementally
/// maintained partial sums, so a token resample walks only the
/// document's active topics and the word's nonzero topics. The bucket
/// sums are rebuilt at sweep (`s`) and document (`r`, `q_coef`) starts
/// to bound floating-point drift; the walks carry a guarded
/// last-element fallback for the residual ulps.
#[allow(clippy::too_many_arguments)]
fn sparse_sweeps(
    config: &LdaConfig,
    tokens: &[u32],
    doc_offsets: &[usize],
    z: &mut [u32],
    n_dk: &mut [u32],
    n_kw: &mut [u32],
    n_k: &mut [u64],
    v: usize,
    rng: &mut StdRng,
) {
    let k = config.num_topics;
    let alpha = config.alpha;
    let beta = config.beta;
    let vbeta = v as f64 * beta;
    let ab = alpha * beta;

    // Cached reciprocals 1/(n_k + Vβ): the dense path pays K divisions
    // per token, this pays two (one per changed topic).
    let mut inv_nk: Vec<f64> = n_k.iter().map(|&nk| 1.0 / (nk as f64 + vbeta)).collect();
    // Per-word list of topics with n_kw > 0 — the `q` walk domain.
    let mut word_topics: Vec<Vec<u32>> = vec![Vec::new(); v];
    for t in 0..k {
        for w in 0..v {
            if n_kw[t * v + w] > 0 {
                word_topics[w].push(t as u32);
            }
        }
    }
    // Per-document scratch, reused across all documents.
    let mut q_coef = vec![0.0f64; k];
    let mut q_terms: Vec<f64> = Vec::with_capacity(k);
    let mut active: Vec<u32> = Vec::with_capacity(k);

    let mut hits = BucketHits::default();
    let mut degenerate = 0u64;
    for _sweep in 0..config.iterations {
        forumcast_obs::counter_add("lda.gibbs.sweeps", 1);
        // Rebuild the smoothing bucket each sweep to bound drift.
        let mut s_sum: f64 = inv_nk.iter().map(|&inv| ab * inv).sum();
        for di in 0..doc_offsets.len() - 1 {
            let doc = &tokens[doc_offsets[di]..doc_offsets[di + 1]];
            if doc.is_empty() {
                continue;
            }
            // Document bucket and coefficients, rebuilt per document.
            active.clear();
            let mut r_sum = 0.0;
            for t in 0..k {
                let ndk = n_dk[di * k + t];
                q_coef[t] = (ndk as f64 + alpha) * inv_nk[t];
                if ndk > 0 {
                    active.push(t as u32);
                    r_sum += ndk as f64 * beta * inv_nk[t];
                }
            }
            for ti in doc_offsets[di]..doc_offsets[di + 1] {
                let w = tokens[ti] as usize;
                let old = z[ti] as usize;

                // Remove the token's current assignment, updating the
                // bucket sums around the count changes.
                s_sum -= ab * inv_nk[old];
                r_sum -= n_dk[di * k + old] as f64 * beta * inv_nk[old];
                n_dk[di * k + old] -= 1;
                n_kw[old * v + w] -= 1;
                if n_kw[old * v + w] == 0 {
                    let wt = &mut word_topics[w];
                    let pos = wt
                        .iter()
                        .position(|&t| t as usize == old)
                        .expect("word-topic list out of sync with counts");
                    wt.swap_remove(pos);
                }
                n_k[old] -= 1;
                inv_nk[old] = 1.0 / (n_k[old] as f64 + vbeta);
                s_sum += ab * inv_nk[old];
                r_sum += n_dk[di * k + old] as f64 * beta * inv_nk[old];
                q_coef[old] = (n_dk[di * k + old] as f64 + alpha) * inv_nk[old];
                if n_dk[di * k + old] == 0 {
                    let pos = active
                        .iter()
                        .position(|&t| t as usize == old)
                        .expect("active-topic list out of sync with counts");
                    active.swap_remove(pos);
                }

                // Word bucket: mass over the word's nonzero topics.
                let wt = &word_topics[w];
                q_terms.clear();
                let mut q_sum = 0.0;
                for &t in wt {
                    let term = q_coef[t as usize] * n_kw[t as usize * v + w] as f64;
                    q_terms.push(term);
                    q_sum += term;
                }

                let total = q_sum + r_sum + s_sum;
                let u = rng.gen::<f64>();
                let new = if !(total.is_finite() && total > 0.0) {
                    debug_assert!(
                        false,
                        "degenerate sparse sampling row: total = {total} over {k} topics"
                    );
                    degenerate += 1;
                    ((u * k as f64) as usize).min(k - 1)
                } else {
                    let mut x = u * total;
                    if x < q_sum {
                        hits.q += 1;
                        let mut pick = wt[wt.len() - 1] as usize;
                        for (i, &t) in wt.iter().enumerate() {
                            x -= q_terms[i];
                            if x <= 0.0 {
                                pick = t as usize;
                                break;
                            }
                        }
                        pick
                    } else if x < q_sum + r_sum && !active.is_empty() {
                        hits.r += 1;
                        x -= q_sum;
                        let mut pick = active[active.len() - 1] as usize;
                        for &t in &active {
                            x -= n_dk[di * k + t as usize] as f64 * beta * inv_nk[t as usize];
                            if x <= 0.0 {
                                pick = t as usize;
                                break;
                            }
                        }
                        pick
                    } else {
                        hits.s += 1;
                        x -= q_sum + r_sum;
                        let mut pick = k - 1;
                        for (t, &inv) in inv_nk.iter().enumerate() {
                            x -= ab * inv;
                            if x <= 0.0 {
                                pick = t;
                                break;
                            }
                        }
                        pick
                    }
                };

                // Add the new assignment back, mirroring the removal.
                s_sum -= ab * inv_nk[new];
                r_sum -= n_dk[di * k + new] as f64 * beta * inv_nk[new];
                if n_kw[new * v + w] == 0 {
                    word_topics[w].push(new as u32);
                }
                n_kw[new * v + w] += 1;
                n_k[new] += 1;
                inv_nk[new] = 1.0 / (n_k[new] as f64 + vbeta);
                n_dk[di * k + new] += 1;
                if n_dk[di * k + new] == 1 {
                    active.push(new as u32);
                }
                s_sum += ab * inv_nk[new];
                r_sum += n_dk[di * k + new] as f64 * beta * inv_nk[new];
                q_coef[new] = (n_dk[di * k + new] as f64 + alpha) * inv_nk[new];
                z[ti] = new as u32;
            }
        }
    }
    hits.flush();
    if degenerate > 0 {
        forumcast_obs::counter_add("lda.sample.degenerate", degenerate);
    }
}

/// Samples an index proportionally to `probs` (which sum to `total`).
///
/// A degenerate row (`total` zero, negative, or non-finite) trips a
/// debug assertion; in release builds it is counted under the
/// `lda.sample.degenerate` obs counter and resolved by a deterministic
/// uniform fallback, so bad rows are observable instead of silently
/// mapped to the last index.
fn sample_index(probs: &[f64], total: f64, rng: &mut StdRng) -> usize {
    let r = rng.gen::<f64>();
    if !(total.is_finite() && total > 0.0) {
        debug_assert!(
            false,
            "degenerate sampling row: total = {total} over {} probs",
            probs.len()
        );
        forumcast_obs::counter_add("lda.sample.degenerate", 1);
        return ((r * probs.len() as f64) as usize).min(probs.len() - 1);
    }
    let mut u = r * total;
    for (i, &p) in probs.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use forumcast_text::{Corpus, Vocabulary};

    /// Two cleanly separable themes; LDA with K=2 must separate them.
    fn separable_corpus() -> (Corpus, Vocabulary) {
        let mut docs: Vec<Vec<String>> = Vec::new();
        let cats = ["cat", "purr", "whisker", "meow"];
        let code = ["python", "loop", "compile", "debug"];
        for i in 0..20 {
            let theme: &[&str] = if i % 2 == 0 { &cats } else { &code };
            let doc: Vec<String> = (0..12).map(|j| theme[j % 4].to_string()).collect();
            docs.push(doc);
        }
        let mut vocab = Vocabulary::new();
        for d in &docs {
            vocab.observe(d);
        }
        let corpus = Corpus::from_token_docs(&docs, &vocab);
        (corpus, vocab)
    }

    #[test]
    fn thetas_are_valid_distributions() {
        let (corpus, _) = separable_corpus();
        let model = LdaModel::train(&corpus, &LdaConfig::new(3).with_iterations(30));
        for d in 0..corpus.num_docs() {
            let theta = model.doc_topics(d);
            assert_eq!(theta.len(), 3);
            assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(theta.iter().all(|&p| p > 0.0 && p < 1.0));
        }
    }

    #[test]
    fn phis_are_valid_distributions() {
        let (corpus, _) = separable_corpus();
        let model = LdaModel::train(&corpus, &LdaConfig::new(2).with_iterations(30));
        for k in 0..2 {
            let phi = model.topic_words(k);
            assert_eq!(phi.len(), corpus.num_words());
            assert!((phi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn separable_themes_get_distinct_topics() {
        let (corpus, vocab) = separable_corpus();
        let cfg = LdaConfig::new(2)
            .with_iterations(100)
            .with_priors(0.1, 0.01)
            .with_seed(11);
        let model = LdaModel::train(&corpus, &cfg);
        // Every "cat" doc should concentrate on one topic, every
        // "code" doc on the other.
        let cat_topic = model
            .doc_topics(0)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        for d in 0..corpus.num_docs() {
            let theta = model.doc_topics(d);
            let dominant = theta
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            if d % 2 == 0 {
                assert_eq!(dominant, cat_topic, "doc {d} should be a cat doc");
            } else {
                assert_ne!(dominant, cat_topic, "doc {d} should be a code doc");
            }
            assert!(theta[dominant] > 0.7, "doc {d} not concentrated: {theta:?}");
        }
        // Top words of the cat topic are cat words.
        let top = model.top_words(cat_topic, 4);
        let cat_ids: Vec<usize> = ["cat", "purr", "whisker", "meow"]
            .iter()
            .map(|w| vocab.id_of(w).unwrap())
            .collect();
        for id in top {
            assert!(cat_ids.contains(&id));
        }
    }

    #[test]
    fn sparse_sampler_separates_themes_too() {
        let (corpus, _) = separable_corpus();
        let cfg = LdaConfig::new(2)
            .with_iterations(100)
            .with_priors(0.1, 0.01)
            .with_seed(11)
            .with_sampler(LdaSampler::Sparse);
        let model = LdaModel::train(&corpus, &cfg);
        let cat_topic = model
            .doc_topics(0)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        for d in 0..corpus.num_docs() {
            let theta = model.doc_topics(d);
            let dominant = theta
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(
                dominant == cat_topic,
                d % 2 == 0,
                "doc {d} landed on the wrong theme: {theta:?}"
            );
            assert!(theta[dominant] > 0.7, "doc {d} not concentrated: {theta:?}");
        }
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (corpus, _) = separable_corpus();
        for sampler in [LdaSampler::Dense, LdaSampler::Sparse] {
            let cfg = LdaConfig::new(2)
                .with_iterations(20)
                .with_seed(5)
                .with_sampler(sampler);
            let m1 = LdaModel::train(&corpus, &cfg);
            let m2 = LdaModel::train(&corpus, &cfg);
            assert_eq!(m1.doc_topics(3), m2.doc_topics(3), "{sampler} θ");
            assert_eq!(m1.topic_words(1), m2.topic_words(1), "{sampler} φ");
        }
    }

    /// The sparse path maintains its counts incrementally; after
    /// training, its final state must still describe the same corpus
    /// (θ rows sum to 1, φ rows sum to 1 — i.e. no count was lost).
    #[test]
    fn sparse_final_state_is_consistent() {
        let (corpus, _) = separable_corpus();
        let cfg = LdaConfig::new(3)
            .with_iterations(30)
            .with_sampler(LdaSampler::Sparse);
        let model = LdaModel::train(&corpus, &cfg);
        for d in 0..corpus.num_docs() {
            assert!((model.doc_topics(d).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        for t in 0..3 {
            assert!((model.topic_words(t).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn inference_matches_training_theme() {
        let (corpus, vocab) = separable_corpus();
        for sampler in [LdaSampler::Dense, LdaSampler::Sparse] {
            let cfg = LdaConfig::new(2)
                .with_iterations(100)
                .with_priors(0.1, 0.01)
                .with_sampler(sampler);
            let model = LdaModel::train(&corpus, &cfg);
            let cat_doc = forumcast_text::BagOfWords::encode(
                &["cat", "meow", "purr", "cat", "whisker", "meow"],
                &vocab,
            );
            let theta = model.infer(&cat_doc, 99);
            let cat_topic = model
                .doc_topics(0)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert!(
                theta[cat_topic] > 0.6,
                "held-out cat doc got {theta:?} with {sampler} (cat topic {cat_topic})"
            );
        }
    }

    #[test]
    fn empty_doc_infers_uniform() {
        let (corpus, _) = separable_corpus();
        let model = LdaModel::train(&corpus, &LdaConfig::new(4).with_iterations(10));
        let theta = model.infer(&forumcast_text::BagOfWords::from_ids(&[]), 0);
        assert_eq!(theta, vec![0.25; 4]);
    }

    #[test]
    fn out_of_vocab_ids_are_skipped() {
        let (corpus, _) = separable_corpus();
        let model = LdaModel::train(&corpus, &LdaConfig::new(2).with_iterations(10));
        let v = corpus.num_words();
        let doc = forumcast_text::BagOfWords::from_ids(&[v + 1, v + 2]);
        let theta = model.infer(&doc, 0);
        assert_eq!(theta, vec![0.5; 2]);
    }

    #[test]
    fn single_topic_model_is_degenerate_but_valid() {
        let (corpus, _) = separable_corpus();
        for sampler in [LdaSampler::Dense, LdaSampler::Sparse] {
            let cfg = LdaConfig::new(1).with_iterations(5).with_sampler(sampler);
            let model = LdaModel::train(&corpus, &cfg);
            assert_eq!(model.doc_topics(0), &[1.0]);
            let theta = model.infer(corpus.doc(0), 3);
            assert_eq!(theta, vec![1.0]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one topic")]
    fn zero_topics_rejected() {
        LdaConfig::new(0);
    }

    #[test]
    fn empty_corpus_trains_trivially() {
        let corpus = Corpus::from_bows(vec![], 0);
        for sampler in [LdaSampler::Dense, LdaSampler::Sparse] {
            let cfg = LdaConfig::new(2).with_iterations(5).with_sampler(sampler);
            let model = LdaModel::train(&corpus, &cfg);
            assert_eq!(model.num_topics(), 2);
            assert_eq!(model.num_docs(), 0);
        }
    }

    #[test]
    fn batch_inference_bitwise_matches_serial_for_any_thread_count() {
        let (corpus, _) = separable_corpus();
        for sampler in [LdaSampler::Dense, LdaSampler::Sparse] {
            let cfg = LdaConfig::new(3).with_iterations(20).with_sampler(sampler);
            let model = LdaModel::train(&corpus, &cfg);
            let docs: Vec<(forumcast_text::BagOfWords, u64)> = (0..corpus.num_docs())
                .map(|d| (corpus.doc(d).clone(), d as u64 * 13 + 1))
                .collect();
            let serial: Vec<Vec<f64>> = docs
                .iter()
                .map(|(doc, seed)| model.infer(doc, *seed))
                .collect();
            for threads in [1, 2, 7] {
                let batch = model.infer_batch(&docs, threads);
                assert_eq!(batch.len(), serial.len());
                for (d, (a, b)) in serial.iter().zip(&batch).enumerate() {
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "doc {d} differs with {threads} threads ({sampler})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn model_serde_roundtrip() {
        let (corpus, _) = separable_corpus();
        let model = LdaModel::train(&corpus, &LdaConfig::new(2).with_iterations(5));
        let json = serde_json::to_string(&model).unwrap();
        let back: LdaModel = serde_json::from_str(&json).unwrap();
        for (a, b) in back.doc_topics(0).iter().zip(model.doc_topics(0)) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn config_missing_sampler_field_defaults_to_dense() {
        let json = serde_json::to_string(&LdaConfig::new(2)).unwrap();
        // Simulate a config saved before the sampler field existed.
        let stripped = json
            .replace(",\"sampler\":\"Dense\"", "")
            .replace("\"sampler\":\"Dense\",", "");
        assert!(!stripped.contains("sampler"), "{stripped}");
        let back: LdaConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.sampler, LdaSampler::Dense);
    }

    #[test]
    fn sampler_parses_from_cli_spelling() {
        assert_eq!("dense".parse::<LdaSampler>().unwrap(), LdaSampler::Dense);
        assert_eq!("sparse".parse::<LdaSampler>().unwrap(), LdaSampler::Sparse);
        assert!("fancy".parse::<LdaSampler>().is_err());
        assert_eq!(LdaSampler::Sparse.to_string(), "sparse");
    }

    #[test]
    fn top_words_breaks_ties_by_word_id() {
        // Uniform φ row: every word ties, so top-n must be the first n
        // word ids.
        let corpus = Corpus::from_bows(
            vec![forumcast_text::BagOfWords::from_ids(&[0, 1, 2, 3, 4])],
            5,
        );
        let model = LdaModel::train(&corpus, &LdaConfig::new(1).with_iterations(0));
        assert_eq!(model.top_words(0, 3), vec![0, 1, 2]);
        assert_eq!(model.top_words(0, 0), Vec::<usize>::new());
        // n larger than the vocabulary clamps.
        assert_eq!(model.top_words(0, 99).len(), 5);
    }

    #[test]
    fn top_words_matches_full_sort() {
        let (corpus, _) = separable_corpus();
        let model = LdaModel::train(&corpus, &LdaConfig::new(2).with_iterations(30));
        for topic in 0..2 {
            let row = model.topic_words(topic);
            let mut full: Vec<usize> = (0..model.num_words()).collect();
            full.sort_by(|&a, &b| row[b].total_cmp(&row[a]).then_with(|| a.cmp(&b)));
            for n in [1, 3, model.num_words()] {
                assert_eq!(
                    model.top_words(topic, n),
                    full[..n],
                    "topic {topic} top {n}"
                );
            }
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "degenerate sampling row")]
    fn degenerate_row_trips_debug_assertion() {
        let mut rng = StdRng::seed_from_u64(1);
        sample_index(&[0.0, 0.0], 0.0, &mut rng);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn degenerate_row_falls_back_deterministically_in_release() {
        let guard = forumcast_obs::arm();
        let mut rng = StdRng::seed_from_u64(1);
        let a = sample_index(&[0.0, 0.0, 0.0], 0.0, &mut rng);
        let mut rng = StdRng::seed_from_u64(1);
        let b = sample_index(&[0.0, 0.0, 0.0], f64::NAN, &mut rng);
        assert_eq!(a, b, "fallback must not depend on the bad total");
        assert!(a < 3);
        let log = forumcast_obs::drain().expect("collector armed");
        drop(guard);
        let degenerate = log
            .counters
            .iter()
            .find(|(n, _)| n == "lda.sample.degenerate")
            .map_or(0, |(_, v)| *v);
        assert_eq!(degenerate, 2);
    }
}
