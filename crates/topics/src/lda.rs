//! Collapsed Gibbs sampling for Latent Dirichlet Allocation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use forumcast_text::{BagOfWords, Corpus};

/// Hyperparameters for [`LdaModel::train`].
///
/// Defaults follow common practice (`α = 50/K`, `β = 0.01`) and the
/// paper's `K = 8`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LdaConfig {
    /// Number of topics `K`.
    pub num_topics: usize,
    /// Symmetric Dirichlet prior on document–topic distributions.
    pub alpha: f64,
    /// Symmetric Dirichlet prior on topic–word distributions.
    pub beta: f64,
    /// Gibbs sweeps over the corpus during training.
    pub iterations: usize,
    /// Gibbs sweeps for fold-in inference of held-out documents.
    pub infer_iterations: usize,
    /// RNG seed (training is deterministic given the seed).
    pub seed: u64,
}

impl LdaConfig {
    /// Creates a config with `K` topics and default priors.
    ///
    /// # Panics
    ///
    /// Panics when `num_topics == 0`.
    pub fn new(num_topics: usize) -> Self {
        assert!(num_topics > 0, "LDA requires at least one topic");
        // Gensim's default symmetric prior is 1/K; forum posts are
        // short documents, so a weak prior keeps θ concentrated.
        LdaConfig {
            num_topics,
            alpha: 1.0 / num_topics as f64,
            beta: 0.01,
            iterations: 200,
            infer_iterations: 30,
            seed: 0xF0CA,
        }
    }

    /// Sets the number of training sweeps.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the Dirichlet priors.
    pub fn with_priors(mut self, alpha: f64, beta: f64) -> Self {
        self.alpha = alpha;
        self.beta = beta;
        self
    }
}

impl Default for LdaConfig {
    /// The paper's default of `K = 8` topics.
    fn default() -> Self {
        LdaConfig::new(8)
    }
}

/// A trained LDA model: topic–word distributions `φ` plus the
/// document–topic distributions `θ` of the training corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LdaModel {
    config: LdaConfig,
    num_words: usize,
    /// `φ[k][w]` — probability of word `w` under topic `k` (smoothed
    /// point estimate from the final Gibbs state).
    phi: Vec<Vec<f64>>,
    /// `θ[d][k]` — topic distribution of training document `d`.
    theta: Vec<Vec<f64>>,
}

impl LdaModel {
    /// Trains LDA on `corpus` by collapsed Gibbs sampling.
    ///
    /// Each token's topic assignment `z` is resampled
    /// `config.iterations` times from
    /// `p(z = k) ∝ (n_{dk} + α) · (n_{kw} + β) / (n_k + Vβ)`
    /// with the token's own assignment excluded. The returned model
    /// stores smoothed point estimates of `φ` and `θ` from the final
    /// state.
    ///
    /// Empty documents receive the uniform topic distribution.
    pub fn train(corpus: &Corpus, config: &LdaConfig) -> LdaModel {
        let _span = forumcast_obs::span("lda.train");
        let k = config.num_topics;
        let v = corpus.num_words().max(1);
        let d = corpus.num_docs();
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Token-level views of each document.
        let docs: Vec<Vec<usize>> = corpus.iter().map(BagOfWords::to_token_ids).collect();
        // Topic assignment per token, initialized uniformly at random.
        let mut z: Vec<Vec<usize>> = docs
            .iter()
            .map(|doc| doc.iter().map(|_| rng.gen_range(0..k)).collect())
            .collect();

        let mut n_dk = vec![vec![0u32; k]; d]; // doc–topic counts
        let mut n_kw = vec![vec![0u32; v]; k]; // topic–word counts
        let mut n_k = vec![0u64; k]; // topic totals
        for (di, doc) in docs.iter().enumerate() {
            for (ti, &w) in doc.iter().enumerate() {
                let t = z[di][ti];
                n_dk[di][t] += 1;
                n_kw[t][w] += 1;
                n_k[t] += 1;
            }
        }

        let alpha = config.alpha;
        let beta = config.beta;
        let vbeta = v as f64 * beta;
        let mut probs = vec![0.0f64; k];
        for _sweep in 0..config.iterations {
            forumcast_obs::counter_add("lda.gibbs.sweeps", 1);
            for (di, doc) in docs.iter().enumerate() {
                for (ti, &w) in doc.iter().enumerate() {
                    let old = z[di][ti];
                    n_dk[di][old] -= 1;
                    n_kw[old][w] -= 1;
                    n_k[old] -= 1;

                    let mut total = 0.0;
                    for t in 0..k {
                        let p = (n_dk[di][t] as f64 + alpha) * (n_kw[t][w] as f64 + beta)
                            / (n_k[t] as f64 + vbeta);
                        probs[t] = p;
                        total += p;
                    }
                    let new = sample_index(&probs, total, &mut rng);
                    z[di][ti] = new;
                    n_dk[di][new] += 1;
                    n_kw[new][w] += 1;
                    n_k[new] += 1;
                }
            }
        }

        // Point estimates.
        let phi: Vec<Vec<f64>> = (0..k)
            .map(|t| {
                let denom = n_k[t] as f64 + vbeta;
                (0..v).map(|w| (n_kw[t][w] as f64 + beta) / denom).collect()
            })
            .collect();
        let theta: Vec<Vec<f64>> = (0..d)
            .map(|di| {
                let len: u32 = n_dk[di].iter().sum();
                let denom = len as f64 + k as f64 * alpha;
                (0..k)
                    .map(|t| (n_dk[di][t] as f64 + alpha) / denom)
                    .collect()
            })
            .collect();

        LdaModel {
            config: config.clone(),
            num_words: v,
            phi,
            theta,
        }
    }

    /// Number of topics `K`.
    pub fn num_topics(&self) -> usize {
        self.config.num_topics
    }

    /// Vocabulary size the model was trained against.
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// The training configuration.
    pub fn config(&self) -> &LdaConfig {
        &self.config
    }

    /// Topic distribution `θ_d` of training document `d`.
    ///
    /// # Panics
    ///
    /// Panics when `doc` is out of range.
    pub fn doc_topics(&self, doc: usize) -> &[f64] {
        &self.theta[doc]
    }

    /// All training document–topic distributions.
    pub fn all_doc_topics(&self) -> &[Vec<f64>] {
        &self.theta
    }

    /// Topic–word distribution `φ_k`.
    ///
    /// # Panics
    ///
    /// Panics when `topic >= K`.
    pub fn topic_words(&self, topic: usize) -> &[f64] {
        &self.phi[topic]
    }

    /// Infers the topic distribution of a held-out document by fold-in
    /// Gibbs sampling with `φ` fixed:
    /// `p(z = k) ∝ (n_{dk} + α) · φ_{k,w}`.
    ///
    /// Word ids outside the training vocabulary are skipped; an empty
    /// (or fully out-of-vocabulary) document yields the uniform
    /// distribution. Inference is deterministic given `seed`.
    pub fn infer(&self, doc: &BagOfWords, seed: u64) -> Vec<f64> {
        forumcast_obs::counter_add("lda.infer.docs", 1);
        let k = self.config.num_topics;
        let tokens: Vec<usize> = doc
            .to_token_ids()
            .into_iter()
            .filter(|&w| w < self.num_words)
            .collect();
        if tokens.is_empty() {
            return vec![1.0 / k as f64; k];
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut z: Vec<usize> = tokens.iter().map(|_| rng.gen_range(0..k)).collect();
        let mut n_dk = vec![0u32; k];
        for &t in &z {
            n_dk[t] += 1;
        }
        let alpha = self.config.alpha;
        let mut probs = vec![0.0f64; k];
        for _sweep in 0..self.config.infer_iterations {
            for (ti, &w) in tokens.iter().enumerate() {
                let old = z[ti];
                n_dk[old] -= 1;
                let mut total = 0.0;
                for t in 0..k {
                    let p = (n_dk[t] as f64 + alpha) * self.phi[t][w];
                    probs[t] = p;
                    total += p;
                }
                let new = sample_index(&probs, total, &mut rng);
                z[ti] = new;
                n_dk[new] += 1;
            }
        }
        let denom = tokens.len() as f64 + k as f64 * alpha;
        (0..k).map(|t| (n_dk[t] as f64 + alpha) / denom).collect()
    }

    /// Batch fold-in inference: [`LdaModel::infer`] over many
    /// held-out documents on up to `threads` worker threads
    /// (`0` = auto). Each document carries its own seed, so every
    /// inference is independent and the output — collected in input
    /// order — is bitwise-identical for any thread count.
    pub fn infer_batch(&self, docs: &[(BagOfWords, u64)], threads: usize) -> Vec<Vec<f64>> {
        let _span = forumcast_obs::span("lda.infer_batch");
        let threads = forumcast_par::resolve_threads(threads);
        forumcast_par::parallel_map(docs, threads, |(doc, seed)| self.infer(doc, *seed))
    }

    /// The `n` highest-probability word ids of `topic`, for
    /// interpretability and diagnostics.
    ///
    /// # Panics
    ///
    /// Panics when `topic >= K`.
    pub fn top_words(&self, topic: usize, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.num_words).collect();
        idx.sort_by(|&a, &b| self.phi[topic][b].total_cmp(&self.phi[topic][a]));
        idx.truncate(n);
        idx
    }
}

/// Samples an index proportionally to `probs` (which sum to `total`).
fn sample_index(probs: &[f64], total: f64, rng: &mut StdRng) -> usize {
    let mut u = rng.gen::<f64>() * total;
    for (i, &p) in probs.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use forumcast_text::{Corpus, Vocabulary};

    /// Two cleanly separable themes; LDA with K=2 must separate them.
    fn separable_corpus() -> (Corpus, Vocabulary) {
        let mut docs: Vec<Vec<String>> = Vec::new();
        let cats = ["cat", "purr", "whisker", "meow"];
        let code = ["python", "loop", "compile", "debug"];
        for i in 0..20 {
            let theme: &[&str] = if i % 2 == 0 { &cats } else { &code };
            let doc: Vec<String> = (0..12).map(|j| theme[j % 4].to_string()).collect();
            docs.push(doc);
        }
        let mut vocab = Vocabulary::new();
        for d in &docs {
            vocab.observe(d);
        }
        let corpus = Corpus::from_token_docs(&docs, &vocab);
        (corpus, vocab)
    }

    #[test]
    fn thetas_are_valid_distributions() {
        let (corpus, _) = separable_corpus();
        let model = LdaModel::train(&corpus, &LdaConfig::new(3).with_iterations(30));
        for d in 0..corpus.num_docs() {
            let theta = model.doc_topics(d);
            assert_eq!(theta.len(), 3);
            assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(theta.iter().all(|&p| p > 0.0 && p < 1.0));
        }
    }

    #[test]
    fn phis_are_valid_distributions() {
        let (corpus, _) = separable_corpus();
        let model = LdaModel::train(&corpus, &LdaConfig::new(2).with_iterations(30));
        for k in 0..2 {
            let phi = model.topic_words(k);
            assert_eq!(phi.len(), corpus.num_words());
            assert!((phi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn separable_themes_get_distinct_topics() {
        let (corpus, vocab) = separable_corpus();
        let cfg = LdaConfig::new(2)
            .with_iterations(100)
            .with_priors(0.1, 0.01)
            .with_seed(11);
        let model = LdaModel::train(&corpus, &cfg);
        // Every "cat" doc should concentrate on one topic, every
        // "code" doc on the other.
        let cat_topic = model
            .doc_topics(0)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        for d in 0..corpus.num_docs() {
            let theta = model.doc_topics(d);
            let dominant = theta
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            if d % 2 == 0 {
                assert_eq!(dominant, cat_topic, "doc {d} should be a cat doc");
            } else {
                assert_ne!(dominant, cat_topic, "doc {d} should be a code doc");
            }
            assert!(theta[dominant] > 0.7, "doc {d} not concentrated: {theta:?}");
        }
        // Top words of the cat topic are cat words.
        let top = model.top_words(cat_topic, 4);
        let cat_ids: Vec<usize> = ["cat", "purr", "whisker", "meow"]
            .iter()
            .map(|w| vocab.id_of(w).unwrap())
            .collect();
        for id in top {
            assert!(cat_ids.contains(&id));
        }
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (corpus, _) = separable_corpus();
        let cfg = LdaConfig::new(2).with_iterations(20).with_seed(5);
        let m1 = LdaModel::train(&corpus, &cfg);
        let m2 = LdaModel::train(&corpus, &cfg);
        assert_eq!(m1.doc_topics(3), m2.doc_topics(3));
        assert_eq!(m1.topic_words(1), m2.topic_words(1));
    }

    #[test]
    fn inference_matches_training_theme() {
        let (corpus, vocab) = separable_corpus();
        let cfg = LdaConfig::new(2)
            .with_iterations(100)
            .with_priors(0.1, 0.01);
        let model = LdaModel::train(&corpus, &cfg);
        let cat_doc = forumcast_text::BagOfWords::encode(
            &["cat", "meow", "purr", "cat", "whisker", "meow"],
            &vocab,
        );
        let theta = model.infer(&cat_doc, 99);
        let cat_topic = model
            .doc_topics(0)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(
            theta[cat_topic] > 0.6,
            "held-out cat doc got {theta:?} (cat topic {cat_topic})"
        );
    }

    #[test]
    fn empty_doc_infers_uniform() {
        let (corpus, _) = separable_corpus();
        let model = LdaModel::train(&corpus, &LdaConfig::new(4).with_iterations(10));
        let theta = model.infer(&forumcast_text::BagOfWords::from_ids(&[]), 0);
        assert_eq!(theta, vec![0.25; 4]);
    }

    #[test]
    fn out_of_vocab_ids_are_skipped() {
        let (corpus, _) = separable_corpus();
        let model = LdaModel::train(&corpus, &LdaConfig::new(2).with_iterations(10));
        let v = corpus.num_words();
        let doc = forumcast_text::BagOfWords::from_ids(&[v + 1, v + 2]);
        let theta = model.infer(&doc, 0);
        assert_eq!(theta, vec![0.5; 2]);
    }

    #[test]
    fn single_topic_model_is_degenerate_but_valid() {
        let (corpus, _) = separable_corpus();
        let model = LdaModel::train(&corpus, &LdaConfig::new(1).with_iterations(5));
        assert_eq!(model.doc_topics(0), &[1.0]);
        let theta = model.infer(corpus.doc(0), 3);
        assert_eq!(theta, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one topic")]
    fn zero_topics_rejected() {
        LdaConfig::new(0);
    }

    #[test]
    fn empty_corpus_trains_trivially() {
        let corpus = Corpus::from_bows(vec![], 0);
        let model = LdaModel::train(&corpus, &LdaConfig::new(2).with_iterations(5));
        assert_eq!(model.num_topics(), 2);
        assert_eq!(model.all_doc_topics().len(), 0);
    }

    #[test]
    fn batch_inference_bitwise_matches_serial_for_any_thread_count() {
        let (corpus, _) = separable_corpus();
        let model = LdaModel::train(&corpus, &LdaConfig::new(3).with_iterations(20));
        let docs: Vec<(forumcast_text::BagOfWords, u64)> = (0..corpus.num_docs())
            .map(|d| (corpus.doc(d).clone(), d as u64 * 13 + 1))
            .collect();
        let serial: Vec<Vec<f64>> = docs
            .iter()
            .map(|(doc, seed)| model.infer(doc, *seed))
            .collect();
        for threads in [1, 2, 7] {
            let batch = model.infer_batch(&docs, threads);
            assert_eq!(batch.len(), serial.len());
            for (d, (a, b)) in serial.iter().zip(&batch).enumerate() {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "doc {d} differs with {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn model_serde_roundtrip() {
        let (corpus, _) = separable_corpus();
        let model = LdaModel::train(&corpus, &LdaConfig::new(2).with_iterations(5));
        let json = serde_json::to_string(&model).unwrap();
        let back: LdaModel = serde_json::from_str(&json).unwrap();
        for (a, b) in back.doc_topics(0).iter().zip(model.doc_topics(0)) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
