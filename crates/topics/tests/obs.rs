//! Counter-exactness test for the LDA instrumentation: the sweep
//! counter must equal the configured iteration count exactly — one
//! increment per Gibbs sweep, no more, no fewer.

use forumcast_text::{Corpus, Vocabulary};
use forumcast_topics::{LdaConfig, LdaModel};

fn tiny_corpus() -> Corpus {
    let docs: Vec<Vec<String>> = [
        "rust borrow checker lifetime",
        "python pandas dataframe index",
        "rust async await tokio",
        "sql join index query",
    ]
    .iter()
    .map(|d| d.split_whitespace().map(str::to_owned).collect())
    .collect();
    let mut vocab = Vocabulary::new();
    for d in &docs {
        vocab.observe(d);
    }
    Corpus::from_token_docs(&docs, &vocab)
}

#[test]
fn gibbs_sweep_counter_matches_configured_iterations() {
    let corpus = tiny_corpus();
    for iterations in [1, 17, 40] {
        let cfg = LdaConfig::new(3).with_iterations(iterations);
        let guard = forumcast_obs::arm();
        let model = LdaModel::train(&corpus, &cfg);
        let _ = model.infer(corpus.doc(0), 7);
        let log = forumcast_obs::drain().expect("collector armed");
        drop(guard);
        let counter = |name: &str| {
            log.counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v)
        };
        assert_eq!(
            counter("lda.gibbs.sweeps"),
            iterations as u64,
            "sweep counter at {iterations} iterations"
        );
        assert_eq!(counter("lda.infer.docs"), 1);
        assert!(
            log.events.iter().any(|e| e.path == "lda.train"),
            "missing lda.train span"
        );
    }
}
