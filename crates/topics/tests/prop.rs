//! Property-based tests for LDA and topic similarities.

use proptest::prelude::*;

use forumcast_text::{BagOfWords, Corpus};
use forumcast_topics::{mean_distribution, tv_similarity, LdaConfig, LdaModel};

fn arb_distribution(k: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..1.0, k).prop_map(|mut v| {
        let s: f64 = v.iter().sum();
        for x in &mut v {
            *x /= s;
        }
        v
    })
}

proptest! {
    /// TV similarity is in [0, 1], symmetric, and 1 iff identical.
    #[test]
    fn tv_similarity_is_a_similarity(a in arb_distribution(5), b in arb_distribution(5)) {
        let s = tv_similarity(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
        prop_assert!((s - tv_similarity(&b, &a)).abs() < 1e-12);
        prop_assert!((tv_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    /// TV similarity satisfies the triangle-style bound derived from
    /// the TV distance metric: d(a,c) ≤ d(a,b) + d(b,c).
    #[test]
    fn tv_triangle_inequality(
        a in arb_distribution(4),
        b in arb_distribution(4),
        c in arb_distribution(4),
    ) {
        let d = |x: &[f64], y: &[f64]| 1.0 - tv_similarity(x, y);
        prop_assert!(d(&a, &c) <= d(&a, &b) + d(&b, &c) + 1e-12);
    }

    /// Mean distributions are valid distributions.
    #[test]
    fn mean_distribution_valid(ds in proptest::collection::vec(arb_distribution(3), 0..6)) {
        let m = mean_distribution(&ds, 3);
        prop_assert_eq!(m.len(), 3);
        prop_assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(m.iter().all(|&p| p >= 0.0));
    }

    /// LDA inference always yields a valid distribution, for any doc.
    #[test]
    fn lda_inference_valid(ids in proptest::collection::vec(0usize..12, 0..40), seed in 0u64..500) {
        // Train once per case on a small fixed corpus (cheap at 10 sweeps).
        let docs: Vec<BagOfWords> = (0..6)
            .map(|d| BagOfWords::from_ids(&[(d * 2) % 12, (d * 2 + 1) % 12, d % 12]))
            .collect();
        let corpus = Corpus::from_bows(docs, 12);
        let model = LdaModel::train(&corpus, &LdaConfig::new(3).with_iterations(10));
        let theta = model.infer(&BagOfWords::from_ids(&ids), seed);
        prop_assert_eq!(theta.len(), 3);
        prop_assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(theta.iter().all(|&p| p > 0.0));
    }
}
