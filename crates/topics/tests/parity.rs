//! Dense-vs-sparse sampler parity harness.
//!
//! The sparse bucket sampler draws from the *same* collapsed Gibbs
//! conditional as the dense reference, but consumes randomness
//! differently, so the two chains are distinct and cannot be compared
//! bitwise. What must hold is *statistical* parity: on corpora with
//! real topic structure both samplers land on models of equivalent
//! quality (held-out perplexity) that assign essentially the same
//! document–topic distributions, up to a permutation of topic labels.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use forumcast_text::{BagOfWords, Corpus};
use forumcast_topics::{perplexity, LdaConfig, LdaModel, LdaSampler};

/// A skewed two-theme corpus: two disjoint 8-word themes, documents
/// drawing ~90% of tokens from their home theme, with Zipf-ish word
/// popularity inside each theme (sparse-friendly skew, matching the
/// forum-corpus shape the sampler targets).
fn themed_corpus(num_docs: usize, seed: u64) -> Corpus {
    let vocab = 16usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let docs: Vec<BagOfWords> = (0..num_docs)
        .map(|d| {
            let home = d % 2; // theme 0 or 1
            let len = rng.gen_range(8..25);
            let ids: Vec<usize> = (0..len)
                .map(|_| {
                    let theme = if rng.gen_bool(0.9) { home } else { 1 - home };
                    // Zipf-ish: word j within a theme with weight 1/(j+1).
                    let mut u = rng.gen::<f64>() * 2.717_857; // H_8
                    let mut j = 0;
                    while j < 7 {
                        u -= 1.0 / (j + 1) as f64;
                        if u <= 0.0 {
                            break;
                        }
                        j += 1;
                    }
                    theme * 8 + j
                })
                .collect();
            BagOfWords::from_ids(&ids)
        })
        .collect();
    Corpus::from_bows(docs, vocab)
}

/// TV distance between two distributions.
fn tv(a: &[f64], b: &[f64]) -> f64 {
    0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

/// Mean per-document TV distance between the two models' θ, under the
/// best topic-label permutation (Gibbs chains may discover the same
/// topics in different order). `K` is small, so brute force is fine.
fn best_permuted_mean_tv(a: &LdaModel, b: &LdaModel) -> f64 {
    let k = a.num_topics();
    assert_eq!(k, b.num_topics());
    let perms = permutations(k);
    let docs = a.num_docs();
    perms
        .iter()
        .map(|perm| {
            (0..docs)
                .map(|d| {
                    let ta = a.doc_topics(d);
                    let tb = b.doc_topics(d);
                    let permuted: Vec<f64> = (0..k).map(|t| tb[perm[t]]).collect();
                    tv(ta, &permuted)
                })
                .sum::<f64>()
                / docs as f64
        })
        .fold(f64::INFINITY, f64::min)
}

fn permutations(k: usize) -> Vec<Vec<usize>> {
    if k == 1 {
        return vec![vec![0]];
    }
    let mut out = Vec::new();
    for sub in permutations(k - 1) {
        for pos in 0..k {
            let mut p: Vec<usize> = sub.iter().map(|&x| x + usize::from(x >= pos)).collect();
            p.insert(0, pos);
            out.push(p);
        }
    }
    out
}

fn train_pair(corpus: &Corpus, k: usize, iterations: usize) -> (LdaModel, LdaModel) {
    let base = LdaConfig::new(k).with_iterations(iterations).with_seed(42);
    let dense = LdaModel::train(corpus, &base.clone().with_sampler(LdaSampler::Dense));
    let sparse = LdaModel::train(corpus, &base.with_sampler(LdaSampler::Sparse));
    (dense, sparse)
}

#[test]
fn perplexity_parity_on_themed_corpus() {
    let corpus = themed_corpus(60, 11);
    let heldout = themed_corpus(20, 99);
    let (dense, sparse) = train_pair(&corpus, 2, 150);
    let pd = perplexity(&dense, &heldout, 7);
    let ps = perplexity(&sparse, &heldout, 7);
    assert!(pd.is_finite() && ps.is_finite());
    let rel = (pd - ps).abs() / pd;
    assert!(
        rel < 0.05,
        "held-out perplexity diverged: dense {pd:.3} vs sparse {ps:.3} ({rel:.4} rel)"
    );
}

#[test]
fn document_topic_distributions_agree_up_to_label_permutation() {
    let corpus = themed_corpus(60, 23);
    let (dense, sparse) = train_pair(&corpus, 2, 150);
    let mean_tv = best_permuted_mean_tv(&dense, &sparse);
    assert!(
        mean_tv < 0.12,
        "mean per-doc TV distance {mean_tv:.4} exceeds parity bound"
    );
}

#[test]
fn parity_holds_at_more_topics_than_themes() {
    // K = 3 over 2 themes: the surplus topic must not break parity.
    let corpus = themed_corpus(60, 37);
    let heldout = themed_corpus(20, 101);
    let (dense, sparse) = train_pair(&corpus, 3, 150);
    let pd = perplexity(&dense, &heldout, 3);
    let ps = perplexity(&sparse, &heldout, 3);
    let rel = (pd - ps).abs() / pd;
    assert!(
        rel < 0.10,
        "held-out perplexity diverged: dense {pd:.3} vs sparse {ps:.3} ({rel:.4} rel)"
    );
}

proptest! {
    /// On arbitrary random corpora both samplers produce valid models
    /// whose training-set perplexities stay within a loose band of
    /// each other (different chains, same model family).
    #[test]
    fn samplers_stay_comparable_on_random_corpora(seed in 0u64..1000, k in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let vocab = 12;
        let docs: Vec<BagOfWords> = (0..12)
            .map(|_| {
                let len = rng.gen_range(3..20);
                let ids: Vec<usize> = (0..len).map(|_| rng.gen_range(0..vocab)).collect();
                BagOfWords::from_ids(&ids)
            })
            .collect();
        let corpus = Corpus::from_bows(docs, vocab);
        let (dense, sparse) = train_pair(&corpus, k, 40);
        for d in 0..corpus.num_docs() {
            let t = sparse.doc_topics(d);
            prop_assert!((t.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(t.iter().all(|&p| p > 0.0));
        }
        let pd = perplexity(&dense, &corpus, 5);
        let ps = perplexity(&sparse, &corpus, 5);
        prop_assert!(pd.is_finite() && ps.is_finite());
        let ratio = ps / pd;
        // Unstructured corpora give noisy chains; parity here means
        // "same ballpark", not the tight themed-corpus bound.
        prop_assert!((0.5..2.0).contains(&ratio), "ratio {ratio} (dense {pd}, sparse {ps})");
    }
}
