//! Dense-vs-sparse Gibbs throughput on a Zipf-skewed synthetic
//! corpus, across topic counts. Run with `--release`:
//!
//! ```text
//! cargo run --release -p forumcast-topics --example sampler_throughput
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use forumcast_text::{BagOfWords, Corpus};
use forumcast_topics::{LdaConfig, LdaModel, LdaSampler};

/// Topic-structured corpus: `themes` disjoint word blocks, each doc
/// drawing ~90% of its tokens from one home theme with Zipf-skewed
/// word popularity inside the block — the shape real forum text has
/// and the shape that concentrates `n_kw` rows.
fn themed_corpus(num_docs: usize, themes: usize, words_per_theme: usize, seed: u64) -> Corpus {
    let vocab = themes * words_per_theme;
    let mut rng = StdRng::seed_from_u64(seed);
    let h: f64 = (1..=words_per_theme).map(|j| 1.0 / j as f64).sum();
    let docs: Vec<BagOfWords> = (0..num_docs)
        .map(|d| {
            let home = d % themes;
            let len = rng.gen_range(20..80);
            let ids: Vec<usize> = (0..len)
                .map(|_| {
                    let theme = if rng.gen_bool(0.9) {
                        home
                    } else {
                        rng.gen_range(0..themes)
                    };
                    let mut u = rng.gen::<f64>() * h;
                    let mut j = 0;
                    while j + 1 < words_per_theme {
                        u -= 1.0 / (j + 1) as f64;
                        if u <= 0.0 {
                            break;
                        }
                        j += 1;
                    }
                    theme * words_per_theme + j
                })
                .collect();
            BagOfWords::from_ids(&ids)
        })
        .collect();
    Corpus::from_bows(docs, vocab)
}

fn main() {
    let corpus = themed_corpus(400, 12, 50, 7);
    let tokens: usize = (0..corpus.num_docs())
        .map(|d| corpus.doc(d).total() as usize)
        .sum();
    println!("corpus: {} docs, {} tokens", corpus.num_docs(), tokens);
    for &k in &[4usize, 8, 16, 32, 64] {
        let mut times = Vec::new();
        for sampler in [LdaSampler::Dense, LdaSampler::Sparse] {
            let cfg = LdaConfig::new(k).with_iterations(30).with_sampler(sampler);
            let t0 = Instant::now();
            let m = LdaModel::train(&corpus, &cfg);
            let dt = t0.elapsed().as_secs_f64();
            times.push(dt);
            std::hint::black_box(m.doc_topics(0));
        }
        println!(
            "K={k:3}  dense {:7.1} ms  sparse {:7.1} ms  speedup {:.2}x",
            times[0] * 1e3,
            times[1] * 1e3,
            times[0] / times[1]
        );
    }
}
