//! Validates a Chrome trace-event file written via `--trace` /
//! `FORUMCAST_TRACE`: the JSON must parse, `traceEvents` must be a
//! non-empty array, and every span name given on the command line
//! must appear. Used by `scripts/check.sh` as the trace smoke pass.
//!
//! Usage: `validate_trace <trace.json> [required-span-name ...]`

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: validate_trace <trace.json> [required-span-name ...]");
        return ExitCode::FAILURE;
    };
    let json = match std::fs::read_to_string(&path) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("validate_trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let value: serde::Value = match serde_json::from_str(&json) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("validate_trace: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let serde::Value::Object(fields) = &value else {
        eprintln!("validate_trace: {path}: top level is not an object");
        return ExitCode::FAILURE;
    };
    let Some(events) = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
    else {
        eprintln!("validate_trace: {path}: no traceEvents field");
        return ExitCode::FAILURE;
    };
    let serde::Value::Array(items) = events else {
        eprintln!("validate_trace: {path}: traceEvents is not an array");
        return ExitCode::FAILURE;
    };
    if items.is_empty() {
        eprintln!("validate_trace: {path}: traceEvents is empty");
        return ExitCode::FAILURE;
    }
    let names: Vec<&str> = items
        .iter()
        .filter_map(|item| {
            let serde::Value::Object(fields) = item else {
                return None;
            };
            fields.iter().find(|(k, _)| k == "name").and_then(|(_, v)| {
                if let serde::Value::Str(s) = v {
                    Some(s.as_str())
                } else {
                    None
                }
            })
        })
        .collect();
    // Unit-indexed spans are named `label#N`; a required name matches
    // either the exact name or the label with its numeric suffix
    // stripped (so `eval.fold` matches `eval.fold#0`).
    let base = |name: &str| -> String {
        match name.rsplit_once('#') {
            Some((b, idx)) if !idx.is_empty() && idx.bytes().all(|c| c.is_ascii_digit()) => {
                b.to_string()
            }
            _ => name.to_string(),
        }
    };
    let mut missing = Vec::new();
    for required in args {
        if !names.iter().any(|n| *n == required || base(n) == required) {
            missing.push(required);
        }
    }
    if !missing.is_empty() {
        eprintln!(
            "validate_trace: {path}: {} events, but missing span name(s): {}",
            items.len(),
            missing.join(", ")
        );
        return ExitCode::FAILURE;
    }
    println!(
        "validate_trace: {path}: {} events, all required names present",
        items.len()
    );
    ExitCode::SUCCESS
}
