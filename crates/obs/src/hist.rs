//! Fixed-bucket log-scale (HDR-style) histograms for latency and
//! value distributions.
//!
//! The bucket layout is a pure function of the value, so recording is
//! one index computation plus one increment, merging is element-wise
//! bucket addition (commutative — the sharded collector relies on
//! this for thread-count-independent drains), and memory is a fixed
//! ~15 KB regardless of how many values are recorded.
//!
//! Layout: values below 2⁵ = 32 get exact unit-width buckets; above
//! that, each power-of-two range splits into 32 linear sub-buckets,
//! bounding the relative quantile error at 1/32 ≈ 3.1% across the
//! full `u64` range. This is the classic HDR histogram scheme with 5
//! sub-bucket bits.

/// Number of linear sub-buckets per power-of-two range, as a bit
/// count: 2⁵ = 32 sub-buckets, ≤ 3.1% relative error.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: the exact range `[0, 32)` plus 32 sub-buckets
/// for each of the 59 power-of-two ranges `[2⁵, 2⁶) … [2⁶³, 2⁶⁴)`.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// A fixed-bucket log-scale histogram over `u64` values.
///
/// Quantiles come back as the lower bound of the bucket containing
/// the requested rank — deterministic, and within 3.1% of the true
/// value (exact below 32). `max` and `sum` are tracked exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram (allocates the fixed bucket array).
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index for `value`: identity below 32, otherwise a
    /// (power-of-two range, linear sub-bucket) pair.
    fn index(value: u64) -> usize {
        if value < SUB as u64 {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros(); // >= SUB_BITS
            let sub = (value >> (msb - SUB_BITS)) as usize - SUB;
            (msb - SUB_BITS + 1) as usize * SUB + sub
        }
    }

    /// The lowest value mapping to bucket `i` — what quantiles report.
    fn floor_of(i: usize) -> u64 {
        if i < SUB {
            i as u64
        } else {
            let range = i / SUB - 1; // 0 => [2^5, 2^6)
            let sub = (i % SUB) as u64;
            (SUB as u64 + sub) << range
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram in: bucket-wise addition, so merging
    /// is associative and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at quantile `q` in `[0, 1]`: the lower bound of the
    /// bucket holding the `ceil(q · count)`-th smallest observation
    /// (the exact `max` for `q = 1` when that rank is the last).
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            // The last rank is the maximum itself, which is tracked
            // exactly — no reason to report its bucket floor.
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top bucket's floor can undershoot the exact
                // tracked max; never report past it either.
                return Self::floor_of(i).min(self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(floor value, count)` pairs, in
    /// ascending value order — the deterministic projection used by
    /// canonical lines.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::floor_of(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        for v in 0..32 {
            let rank_q = (v + 1) as f64 / 32.0;
            assert_eq!(h.quantile(rank_q), v, "v={v}");
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.sum(), (0..32).sum::<u64>());
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn large_values_land_within_relative_error() {
        let mut h = Histogram::new();
        for v in [100u64, 1_000, 10_000, 1_000_000, u64::MAX / 2] {
            let i = Histogram::index(v);
            let floor = Histogram::floor_of(i);
            assert!(floor <= v, "floor {floor} > v {v}");
            let err = (v - floor) as f64 / v as f64;
            assert!(err <= 1.0 / 32.0 + 1e-12, "v={v} err={err}");
        }
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(Histogram::index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_floors_are_monotonic_and_consistent() {
        let mut prev = None;
        for i in 0..BUCKETS {
            let floor = Histogram::floor_of(i);
            assert_eq!(
                Histogram::index(floor),
                i,
                "floor of bucket {i} must map back to it"
            );
            if let Some(p) = prev {
                assert!(floor > p, "bucket {i} floor not increasing");
            }
            prev = Some(floor);
        }
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((480..=500).contains(&p50), "p50={p50}");
        assert!((960..=990).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(0.0), 1); // rank clamps to the smallest
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..500u64 {
            let target = if v % 3 == 0 { &mut a } else { &mut b };
            target.record(v * 7);
            all.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }
}
