//! Machine-readable bench reports and the perf-regression gate.
//!
//! [`TraceLog::to_bench_json`] renders a drained log as a stable,
//! versioned JSON document (`schema`/`version` fields, name-sorted
//! arrays) meant to be committed as a baseline artifact — e.g.
//! `BENCH_quick.json` at the repo root. `forumcast bench compare`
//! parses two such documents into [`BenchReport`]s and calls
//! [`compare_reports`], which flags wall-time and p99 regressions
//! above configurable tolerances while ignoring spans too short to
//! measure reliably.
//!
//! The emitter is hand-rolled (this crate is zero-dep, like the
//! Chrome trace writer); parsing lives in the CLI, which already
//! carries a JSON reader.

use crate::report::{escape_json, json_f64};
use crate::TraceLog;

/// Identifies the document type; readers must reject anything else.
pub const BENCH_SCHEMA: &str = "forumcast-bench";
/// Bumped on any backwards-incompatible change to the layout below.
pub const BENCH_VERSION: u64 = 1;

const NS_PER_MS: f64 = 1e6;

fn ms(ns: u64) -> f64 {
    ns as f64 / NS_PER_MS
}

impl TraceLog {
    /// Renders the log as a versioned bench report:
    ///
    /// ```json
    /// {
    ///   "schema": "forumcast-bench",
    ///   "version": 1,
    ///   "wall_ms": 544.98,
    ///   "spans":      [{"name","calls","total_ms","self_ms",
    ///                   "p50_ms","p90_ms","p99_ms","max_ms"}, …],
    ///   "counters":   [{"name","total","per_sec"}, …],
    ///   "histograms": [{"name","count","p50","p90","p99","max","sum"}, …]
    /// }
    /// ```
    ///
    /// All three arrays are sorted by name so committed baselines
    /// diff cleanly; span durations are milliseconds, percentiles
    /// come from the per-label duration histograms (≤ 3.1% bucket
    /// error, see [`crate::Histogram`]), and `per_sec` is the counter
    /// total over the wall time.
    pub fn to_bench_json(&self) -> String {
        let summary = self.summary();
        let mut rows = summary.rows.clone();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        let wall_s = self.wall_ns as f64 / 1e9;

        let mut out = String::with_capacity(256 + rows.len() * 160);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{BENCH_SCHEMA}\",\n"));
        out.push_str(&format!("  \"version\": {BENCH_VERSION},\n"));
        out.push_str(&format!("  \"wall_ms\": {},\n", json_f64(ms(self.wall_ns))));

        out.push_str("  \"spans\": [");
        for (i, row) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"calls\": {}, \"total_ms\": {}, \
                 \"self_ms\": {}, \"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, \
                 \"max_ms\": {}}}",
                escape_json(&row.name),
                row.calls,
                json_f64(ms(row.total_ns)),
                json_f64(ms(row.self_ns)),
                json_f64(ms(row.p50_ns())),
                json_f64(ms(row.p90_ns())),
                json_f64(ms(row.p99_ns())),
                json_f64(ms(row.max_ns())),
            ));
        }
        out.push_str(if rows.is_empty() { "],\n" } else { "\n  ],\n" });

        out.push_str("  \"counters\": [");
        for (i, (name, total)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let per_sec = if wall_s > 0.0 {
                *total as f64 / wall_s
            } else {
                0.0
            };
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"total\": {total}, \"per_sec\": {}}}",
                escape_json(name),
                json_f64(per_sec),
            ));
        }
        out.push_str(if self.counters.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });

        out.push_str("  \"histograms\": [");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"count\": {}, \"p50\": {}, \"p90\": {}, \
                 \"p99\": {}, \"max\": {}, \"sum\": {}}}",
                escape_json(name),
                h.count(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.max(),
                h.sum(),
            ));
        }
        out.push_str(if self.hists.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

/// One span's stats as read back from a bench-report document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSpanStat {
    /// Span label (unit suffixes already stripped at emit time).
    pub name: String,
    /// Completed calls.
    pub calls: u64,
    /// Summed wall milliseconds across calls.
    pub total_ms: f64,
    /// 99th-percentile per-call milliseconds.
    pub p99_ms: f64,
}

/// A parsed bench report — the subset of the document the regression
/// gate consumes. The CLI builds these from JSON; tests build them
/// directly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchReport {
    /// End-to-end wall milliseconds of the run.
    pub wall_ms: f64,
    /// Per-span stats, any order.
    pub spans: Vec<BenchSpanStat>,
}

/// Gate thresholds for [`compare_reports`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareOptions {
    /// Maximum allowed `current / baseline` ratio for wall time and
    /// per-span totals (1.5 = fail beyond +50%).
    pub tolerance: f64,
    /// Maximum allowed ratio for per-span p99 — looser by default,
    /// tail percentiles are noisier than totals.
    pub p99_tolerance: f64,
    /// Spans (and wall times) whose *baseline* total is below this
    /// many milliseconds are reported but never gate: ratios of
    /// sub-noise-floor durations are meaningless.
    pub min_ms: f64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            tolerance: 1.5,
            p99_tolerance: 2.0,
            min_ms: 20.0,
        }
    }
}

/// One span's baseline-vs-current numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    /// Span label.
    pub name: String,
    /// Baseline summed milliseconds.
    pub base_total_ms: f64,
    /// Current summed milliseconds.
    pub cur_total_ms: f64,
    /// Baseline p99 milliseconds.
    pub base_p99_ms: f64,
    /// Current p99 milliseconds.
    pub cur_p99_ms: f64,
}

impl BenchDelta {
    /// `current / baseline` total ratio (infinite when the baseline
    /// is zero and the current is not).
    pub fn ratio(&self) -> f64 {
        ratio_of(self.base_total_ms, self.cur_total_ms)
    }
}

fn ratio_of(base: f64, cur: f64) -> f64 {
    if base > 0.0 {
        cur / base
    } else if cur > 0.0 {
        f64::INFINITY
    } else {
        1.0
    }
}

/// The outcome of [`compare_reports`]: per-span deltas plus the list
/// of gate failures (empty = pass). Render with
/// [`BenchComparison::render`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchComparison {
    /// Wall milliseconds in the baseline.
    pub base_wall_ms: f64,
    /// Wall milliseconds in the current run.
    pub cur_wall_ms: f64,
    /// Per-span numbers for every span present in either report,
    /// sorted by baseline total descending (new spans at their
    /// current size). Spans missing from the current report are NOT
    /// here — they are failures.
    pub deltas: Vec<BenchDelta>,
    /// Human-readable gate failures, each naming the offending span.
    pub failures: Vec<String>,
}

impl BenchComparison {
    /// True when no regression tripped the gate.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// A table of per-span ratios followed by the verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .deltas
            .iter()
            .map(|d| d.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        out.push_str(&format!(
            "{:<name_w$}  {:>12}  {:>12}  {:>7}  {:>10}  {:>10}\n",
            "span", "base ms", "cur ms", "ratio", "base p99", "cur p99"
        ));
        out.push_str(&format!(
            "{:<name_w$}  {:>12.2}  {:>12.2}  {:>6.2}x  {:>10}  {:>10}\n",
            "(wall)",
            self.base_wall_ms,
            self.cur_wall_ms,
            ratio_of(self.base_wall_ms, self.cur_wall_ms),
            "-",
            "-"
        ));
        for d in &self.deltas {
            out.push_str(&format!(
                "{:<name_w$}  {:>12.2}  {:>12.2}  {:>6.2}x  {:>10.2}  {:>10.2}\n",
                d.name,
                d.base_total_ms,
                d.cur_total_ms,
                d.ratio(),
                d.base_p99_ms,
                d.cur_p99_ms,
            ));
        }
        if self.passed() {
            out.push_str("bench compare: OK (no spans regressed past tolerance)\n");
        } else {
            for f in &self.failures {
                out.push_str(&format!("REGRESSION: {f}\n"));
            }
        }
        out
    }
}

/// Diffs `current` against `baseline`. A failure is recorded when:
///
/// - the wall time regressed past `tolerance` (baseline wall ≥
///   `min_ms`),
/// - a span's total regressed past `tolerance` (baseline total ≥
///   `min_ms`),
/// - a span's p99 regressed past `p99_tolerance` (baseline p99 ≥
///   `min_ms`), or
/// - a span with baseline total ≥ `min_ms` is missing from the
///   current report (a silently-dropped measurement must not read as
///   a speedup).
///
/// Spans only in `current` are listed in the deltas but never fail:
/// new instrumentation is not a regression.
pub fn compare_reports(
    baseline: &BenchReport,
    current: &BenchReport,
    opts: &CompareOptions,
) -> BenchComparison {
    let mut failures = Vec::new();
    let wall_ratio = ratio_of(baseline.wall_ms, current.wall_ms);
    if baseline.wall_ms >= opts.min_ms && wall_ratio > opts.tolerance {
        failures.push(format!(
            "wall time {:.2} ms -> {:.2} ms ({wall_ratio:.2}x > {:.2}x tolerance)",
            baseline.wall_ms, current.wall_ms, opts.tolerance
        ));
    }
    let mut deltas = Vec::new();
    for base in &baseline.spans {
        match current.spans.iter().find(|c| c.name == base.name) {
            Some(cur) => {
                let d = BenchDelta {
                    name: base.name.clone(),
                    base_total_ms: base.total_ms,
                    cur_total_ms: cur.total_ms,
                    base_p99_ms: base.p99_ms,
                    cur_p99_ms: cur.p99_ms,
                };
                if base.total_ms >= opts.min_ms && d.ratio() > opts.tolerance {
                    failures.push(format!(
                        "span `{}` total {:.2} ms -> {:.2} ms ({:.2}x > {:.2}x tolerance)",
                        d.name,
                        d.base_total_ms,
                        d.cur_total_ms,
                        d.ratio(),
                        opts.tolerance
                    ));
                }
                let p99_ratio = ratio_of(base.p99_ms, cur.p99_ms);
                if base.p99_ms >= opts.min_ms && p99_ratio > opts.p99_tolerance {
                    failures.push(format!(
                        "span `{}` p99 {:.2} ms -> {:.2} ms ({p99_ratio:.2}x > {:.2}x p99 tolerance)",
                        d.name, d.base_p99_ms, d.cur_p99_ms, opts.p99_tolerance
                    ));
                }
                deltas.push(d);
            }
            None => {
                if base.total_ms >= opts.min_ms {
                    failures.push(format!(
                        "span `{}` ({:.2} ms in baseline) missing from current report",
                        base.name, base.total_ms
                    ));
                }
            }
        }
    }
    for cur in &current.spans {
        if !baseline.spans.iter().any(|b| b.name == cur.name) {
            deltas.push(BenchDelta {
                name: cur.name.clone(),
                base_total_ms: 0.0,
                cur_total_ms: cur.total_ms,
                base_p99_ms: 0.0,
                cur_p99_ms: cur.p99_ms,
            });
        }
    }
    deltas.sort_by(|a, b| {
        b.base_total_ms
            .total_cmp(&a.base_total_ms)
            .then_with(|| a.name.cmp(&b.name))
    });
    BenchComparison {
        base_wall_ms: baseline.wall_ms,
        cur_wall_ms: current.wall_ms,
        deltas,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, EventKind, Histogram};

    fn sample_log() -> TraceLog {
        let span = |path: &str, seq: u64, dur_ns: u64| Event {
            kind: EventKind::Span {
                dur_ns,
                self_ns: dur_ns,
            },
            path: path.to_string(),
            unit: None,
            seq,
            ts_ns: 0,
            tid: 0,
        };
        let mut h = Histogram::new();
        for v in [2u64, 3, 7] {
            h.record(v);
        }
        TraceLog {
            events: vec![
                span("run", 0, 100_000_000),
                span("run/step", 0, 30_000_000),
                span("run/step", 1, 50_000_000),
            ],
            counters: vec![("tokens".to_string(), 4_000)],
            hists: vec![("ckpt.write_ms".to_string(), h)],
            wall_ns: 200_000_000,
        }
    }

    fn as_u64(v: &serde::Value) -> u64 {
        match v {
            serde::Value::I64(i) => u64::try_from(*i).expect("non-negative"),
            serde::Value::U64(u) => *u,
            other => panic!("not an integer: {other:?}"),
        }
    }

    fn field<'v>(v: &'v serde::Value, key: &str) -> &'v serde::Value {
        let serde::Value::Object(fields) = v else {
            panic!("expected object")
        };
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field {key}"))
    }

    #[test]
    fn bench_json_is_versioned_and_complete() {
        let json = sample_log().to_bench_json();
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let serde::Value::Str(schema) = field(&v, "schema") else {
            panic!("schema must be a string")
        };
        assert_eq!(schema, BENCH_SCHEMA);
        assert_eq!(as_u64(field(&v, "version")), BENCH_VERSION);
        let serde::Value::Array(spans) = field(&v, "spans") else {
            panic!("spans must be an array")
        };
        assert_eq!(spans.len(), 2);
        // Name-sorted: run before step.
        let serde::Value::Str(first) = field(&spans[0], "name") else {
            panic!("name must be a string")
        };
        assert_eq!(first, "run");
        for key in [
            "calls", "total_ms", "self_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms",
        ] {
            field(&spans[1], key);
        }
        // step: two calls totalling 80 ms.
        match field(&spans[1], "total_ms") {
            serde::Value::F64(t) => assert!((t - 80.0).abs() < 1e-9, "total_ms={t}"),
            other => panic!("total_ms not a float: {other:?}"),
        }
        let serde::Value::Array(counters) = field(&v, "counters") else {
            panic!("counters must be an array")
        };
        match field(&counters[0], "per_sec") {
            serde::Value::F64(r) => assert!((r - 20_000.0).abs() < 1e-6, "per_sec={r}"),
            other => panic!("per_sec not a float: {other:?}"),
        }
        let serde::Value::Array(hists) = field(&v, "histograms") else {
            panic!("histograms must be an array")
        };
        assert_eq!(as_u64(field(&hists[0], "count")), 3);
        assert_eq!(as_u64(field(&hists[0], "sum")), 12);
    }

    #[test]
    fn empty_log_still_emits_valid_document() {
        let log = TraceLog {
            events: vec![],
            counters: vec![],
            hists: vec![],
            wall_ns: 0,
        };
        let json = log.to_bench_json();
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        assert!(matches!(field(&v, "spans"), serde::Value::Array(a) if a.is_empty()));
    }

    fn report(spans: &[(&str, f64, f64)], wall: f64) -> BenchReport {
        BenchReport {
            wall_ms: wall,
            spans: spans
                .iter()
                .map(|&(name, total, p99)| BenchSpanStat {
                    name: name.to_string(),
                    calls: 1,
                    total_ms: total,
                    p99_ms: p99,
                })
                .collect(),
        }
    }

    #[test]
    fn identical_reports_pass() {
        let base = report(&[("run", 100.0, 40.0), ("step", 80.0, 30.0)], 200.0);
        let cmp = compare_reports(&base, &base.clone(), &CompareOptions::default());
        assert!(cmp.passed(), "{:?}", cmp.failures);
        assert_eq!(cmp.deltas.len(), 2);
        assert!(cmp.render().contains("bench compare: OK"));
    }

    #[test]
    fn total_regression_fails_naming_the_span() {
        let base = report(&[("run", 100.0, 40.0)], 200.0);
        let cur = report(&[("run", 400.0, 40.0)], 210.0);
        let cmp = compare_reports(&base, &cur, &CompareOptions::default());
        assert!(!cmp.passed());
        assert!(
            cmp.failures.iter().any(|f| f.contains("`run`")),
            "{:?}",
            cmp.failures
        );
        assert!(cmp.render().contains("REGRESSION"));
    }

    #[test]
    fn wall_regression_fails() {
        let base = report(&[], 200.0);
        let cur = report(&[], 900.0);
        let cmp = compare_reports(&base, &cur, &CompareOptions::default());
        assert!(cmp.failures.iter().any(|f| f.contains("wall time")));
    }

    #[test]
    fn p99_regression_uses_its_own_tolerance() {
        let base = report(&[("run", 100.0, 40.0)], 200.0);
        let cur = report(&[("run", 120.0, 90.0)], 200.0);
        let cmp = compare_reports(&base, &cur, &CompareOptions::default());
        assert!(
            cmp.failures.iter().any(|f| f.contains("p99")),
            "{:?}",
            cmp.failures
        );
        // Same p99 jump is fine when the baseline p99 is under the
        // noise floor.
        let base_small = report(&[("run", 100.0, 4.0)], 200.0);
        let cur_small = report(&[("run", 120.0, 9.0)], 200.0);
        let cmp = compare_reports(&base_small, &cur_small, &CompareOptions::default());
        assert!(cmp.passed(), "{:?}", cmp.failures);
    }

    #[test]
    fn small_spans_never_gate() {
        let base = report(&[("tiny", 1.0, 0.5)], 200.0);
        let cur = report(&[("tiny", 10.0, 5.0)], 200.0);
        let cmp = compare_reports(&base, &cur, &CompareOptions::default());
        assert!(cmp.passed(), "{:?}", cmp.failures);
    }

    #[test]
    fn missing_significant_span_fails_but_new_spans_pass() {
        let base = report(&[("run", 100.0, 40.0)], 200.0);
        let cur = report(&[("other", 50.0, 20.0)], 200.0);
        let cmp = compare_reports(&base, &cur, &CompareOptions::default());
        assert!(
            cmp.failures.iter().any(|f| f.contains("missing")),
            "{:?}",
            cmp.failures
        );
        // The new span appears in deltas with a zero baseline.
        assert!(cmp.deltas.iter().any(|d| d.name == "other"));
        // Reverse direction: extra current spans alone never fail.
        let cmp = compare_reports(&cur, &base, &CompareOptions::default());
        assert!(!cmp.passed(), "other went missing");
        let base2 = report(&[], 200.0);
        let cmp = compare_reports(&base2, &cur, &CompareOptions::default());
        assert!(cmp.passed(), "{:?}", cmp.failures);
    }
}
