//! Zero-dependency observability for forumcast: hierarchical span
//! timers, monotonic counters, per-epoch training telemetry, and a
//! structured event sink that renders Chrome trace-event JSON
//! (loadable in `chrome://tracing` / Perfetto) plus a human-readable
//! end-of-run summary table.
//!
//! The repo is offline, so this is built from scratch instead of
//! vendoring `tracing`: a process-global collector armed the same way
//! [`forumcast-resilience`'s fault plans are (an [`AtomicBool`] fast
//! path in front of a mutex-guarded state slot), a thread-local span
//! stack for self-vs-child time accounting, and an explicit
//! [`drain`] that snapshots everything recorded so far.
//!
//! # Determinism contract
//!
//! Instrumentation never feeds back into computation: probes only
//! *read* pipeline state, and timings are recorded, not consumed.
//! Event identity is logical — a full hierarchical *path* (span
//! labels, with `#unit` suffixes for indexed work like CV folds) plus
//! an occurrence sequence number per `(path, unit)` key — so two runs
//! of the same configuration produce identical canonicalized event
//! sequences regardless of thread count; only timestamps and thread
//! ids differ, and [`TraceLog::canonical_lines`] excludes both.
//!
//! Parallel work items must be delimited with [`task_span`] (a
//! *detached* span that roots its own path) so that the paths of
//! events recorded inside them do not depend on which thread — or
//! whether the single-thread inline fallback — ran the item.
//!
//! # Cost when disabled
//!
//! Every probe starts with one relaxed-ordering-free atomic load and
//! a branch; no allocation, no locking, no clock read. Hot loops
//! (Gibbs sweeps, optimizer steps) can call probes unconditionally.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

mod report;

pub use report::{SpanRow, Summary, TraceLog};

/// Environment variable naming the trace output file. When set, CLI
/// and bench entry points arm the collector at startup and write the
/// Chrome trace-event JSON here on exit.
pub const TRACE_ENV: &str = "FORUMCAST_TRACE";

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<Collector>> = Mutex::new(None);
static ARM_LOCK: Mutex<()> = Mutex::new(());
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

struct Frame {
    path: String,
    start: Instant,
    child_ns: u64,
    detached: bool,
}

struct Collector {
    start: Instant,
    events: Vec<Event>,
    counters: HashMap<String, u64>,
    seq: HashMap<(String, Option<u64>), u64>,
}

impl Collector {
    fn new() -> Self {
        Collector {
            start: Instant::now(),
            events: Vec::new(),
            counters: HashMap::new(),
            seq: HashMap::new(),
        }
    }
}

/// What one recorded [`Event`] measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A completed timed span.
    Span {
        /// Total wall duration of the span.
        dur_ns: u64,
        /// Duration minus time spent in (non-detached) child spans on
        /// the same thread.
        self_ns: u64,
    },
    /// An instantaneous occurrence (fault firing, checkpoint hit,
    /// divergence retry).
    Mark,
    /// A sampled value indexed by a logical unit — e.g. per-epoch
    /// training loss, where `unit` is the epoch number.
    Metric {
        /// The sampled value.
        value: f64,
    },
}

/// One recorded observation. Identity is `(path, unit, seq)`:
/// deterministic for a fixed configuration, unlike `ts_ns`/`tid`.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// What was measured.
    pub kind: EventKind,
    /// Hierarchical location: span labels joined by `/`, where an
    /// indexed label is `name#unit`. For marks and metrics the final
    /// segment is the mark/metric name itself.
    pub path: String,
    /// Logical unit index (fold job, epoch, record), when indexed.
    pub unit: Option<u64>,
    /// Occurrence number among events with the same `(path, unit)`.
    pub seq: u64,
    /// Nanoseconds since the collector was armed (span start time for
    /// spans). Not deterministic.
    pub ts_ns: u64,
    /// Small per-thread id, assigned at each thread's first probe.
    /// Not deterministic.
    pub tid: u64,
}

impl Event {
    /// The final path segment — the event's own label.
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// [`Event::name`] with any `#unit` suffix stripped — the label
    /// spans of the same kind share, used for summary aggregation.
    pub fn base_name(&self) -> &str {
        let name = self.name();
        match name.rsplit_once('#') {
            Some((base, idx)) if idx.bytes().all(|b| b.is_ascii_digit()) => base,
            _ => name,
        }
    }
}

/// True when a collector is armed. Probes check this themselves;
/// callers only need it to skip *preparing* expensive inputs (e.g.
/// computing a gradient norm or formatting a dynamic name).
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Disarms the collector (and releases the arming lock) on drop.
pub struct ObsGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Release);
        *STATE.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// Arms a fresh collector process-wide and returns a guard that
/// disarms it on drop. Armed scopes are serialized exactly like
/// fault plans: a second `arm` blocks until the first guard drops, so
/// concurrent tests cannot pollute each other's event logs.
pub fn arm() -> ObsGuard {
    let lock = ARM_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    *STATE.lock().unwrap_or_else(PoisonError::into_inner) = Some(Collector::new());
    ENABLED.store(true, Ordering::Release);
    ObsGuard { _lock: lock }
}

/// Arms the collector for the remainder of the process — for binaries
/// wiring up `--trace` / [`TRACE_ENV`] at startup. Later `arm` calls
/// in the same process will block forever; use [`arm`] in tests.
pub fn arm_for_process() {
    std::mem::forget(arm());
}

/// Snapshots everything recorded since arming (or the previous drain)
/// into a [`TraceLog`] with canonically ordered events, leaving the
/// collector armed and empty. `None` when no collector is armed.
pub fn drain() -> Option<TraceLog> {
    let mut state = STATE.lock().unwrap_or_else(PoisonError::into_inner);
    let col = state.as_mut()?;
    let wall_ns = col.start.elapsed().as_nanos() as u64;
    let mut events = std::mem::take(&mut col.events);
    let counter_map = std::mem::take(&mut col.counters);
    col.seq.clear();
    drop(state);
    // Canonical total order: (path, unit, seq) is unique — seq counts
    // occurrences per (path, unit) — and none of the three depend on
    // thread count or wall clock.
    events.sort_by(|a, b| (a.path.as_str(), a.unit, a.seq).cmp(&(b.path.as_str(), b.unit, b.seq)));
    let mut counters: Vec<(String, u64)> = counter_map.into_iter().collect();
    counters.sort();
    Some(TraceLog {
        events,
        counters,
        wall_ns,
    })
}

/// Times a scope as a child of the current thread's innermost span.
/// Record on drop; a no-op (no allocation, no clock read) when the
/// collector is disarmed.
#[must_use = "a span measures the scope holding the guard"]
pub fn span(name: &str) -> SpanGuard {
    span_impl(name, None, false)
}

/// [`span`] with a logical unit index: labeled `name#unit` so
/// repeated indexed work (bucket 0, bucket 1, …) gets distinct paths.
#[must_use = "a span measures the scope holding the guard"]
pub fn span_unit(name: &str, unit: u64) -> SpanGuard {
    span_impl(name, Some(unit), false)
}

/// A *detached* span for one parallel work item (e.g. one CV fold):
/// its path roots at `name#unit` regardless of what the executing
/// thread was doing, and its duration is *not* charged to any parent
/// span's child time. This keeps event paths identical whether the
/// item ran on a worker thread or on the caller via the single-thread
/// inline fallback.
#[must_use = "a span measures the scope holding the guard"]
pub fn task_span(name: &str, unit: u64) -> SpanGuard {
    span_impl(name, Some(unit), true)
}

fn span_impl(name: &str, unit: Option<u64>, detached: bool) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard {
            active: false,
            unit: None,
        };
    }
    let label = match unit {
        Some(u) => format!("{name}#{u}"),
        None => name.to_string(),
    };
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let path = match stack.last() {
            Some(parent) if !detached => format!("{}/{label}", parent.path),
            _ => label,
        };
        stack.push(Frame {
            path,
            start: Instant::now(),
            child_ns: 0,
            detached,
        });
    });
    SpanGuard { active: true, unit }
}

/// Ends its span on drop, recording duration and self time.
pub struct SpanGuard {
    active: bool,
    unit: Option<u64>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let Some(frame) = STACK.with(|s| s.borrow_mut().pop()) else {
            return;
        };
        let dur_ns = frame.start.elapsed().as_nanos() as u64;
        if !frame.detached {
            STACK.with(|s| {
                if let Some(parent) = s.borrow_mut().last_mut() {
                    parent.child_ns += dur_ns;
                }
            });
        }
        let self_ns = dur_ns.saturating_sub(frame.child_ns);
        record(
            EventKind::Span { dur_ns, self_ns },
            frame.path,
            self.unit,
            frame.start,
        );
    }
}

/// Adds `delta` to the named monotonic counter.
pub fn counter_add(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let mut state = STATE.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(col) = state.as_mut() else { return };
    match col.counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            col.counters.insert(name.to_string(), delta);
        }
    }
}

/// Records a sampled value for logical unit `unit` (e.g. per-epoch
/// training loss, `unit` = epoch index) under the current span path.
pub fn metric(name: &str, unit: u64, value: f64) {
    if !is_enabled() {
        return;
    }
    record(
        EventKind::Metric { value },
        path_under_current(name),
        Some(unit),
        Instant::now(),
    );
}

/// Records an instantaneous occurrence for logical unit `unit` (fault
/// firing, checkpoint hit, retry) under the current span path.
pub fn mark(name: &str, unit: u64) {
    if !is_enabled() {
        return;
    }
    record(
        EventKind::Mark,
        path_under_current(name),
        Some(unit),
        Instant::now(),
    );
}

fn path_under_current(name: &str) -> String {
    STACK.with(|s| match s.borrow().last() {
        Some(parent) => format!("{}/{name}", parent.path),
        None => name.to_string(),
    })
}

fn record(kind: EventKind, path: String, unit: Option<u64>, at: Instant) {
    let tid = TID.with(|t| *t);
    let mut state = STATE.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(col) = state.as_mut() else { return };
    let ts_ns = at.saturating_duration_since(col.start).as_nanos() as u64;
    let slot = col.seq.entry((path.clone(), unit)).or_insert(0);
    let seq = *slot;
    *slot += 1;
    col.events.push(Event {
        kind,
        path,
        unit,
        seq,
        ts_ns,
        tid,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probes_are_inert() {
        assert!(!is_enabled());
        let _s = span("never");
        counter_add("never", 1);
        metric("never", 0, 1.0);
        mark("never", 0);
        assert!(drain().is_none());
    }

    #[test]
    fn spans_nest_and_account_self_vs_child_time() {
        let _g = arm();
        {
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let log = drain().unwrap();
        let paths: Vec<&str> = log.events.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer/inner"]);
        let outer = &log.events[0];
        let inner = &log.events[1];
        let (EventKind::Span { dur_ns, self_ns }, EventKind::Span { dur_ns: in_dur, .. }) =
            (&outer.kind, &inner.kind)
        else {
            panic!("expected span events");
        };
        assert!(dur_ns >= in_dur, "outer contains inner");
        assert_eq!(self_ns + in_dur, *dur_ns, "self = dur - child");
    }

    #[test]
    fn task_spans_root_their_own_paths() {
        let _g = arm();
        {
            let _outer = span("outer");
            let _fold = task_span("fold", 3);
            let _step = span("step");
            mark("hit", 7);
        }
        let log = drain().unwrap();
        let paths: Vec<&str> = log.events.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["fold#3", "fold#3/step", "fold#3/step/hit", "outer"]
        );
        // Detached time is not charged to the parent.
        let outer = log.events.iter().find(|e| e.path == "outer").unwrap();
        let fold = log.events.iter().find(|e| e.path == "fold#3").unwrap();
        let (EventKind::Span { self_ns, .. }, EventKind::Span { dur_ns, .. }) =
            (&outer.kind, &fold.kind)
        else {
            panic!("expected span events");
        };
        let _ = (self_ns, dur_ns); // self accounting checked structurally above
    }

    #[test]
    fn counters_accumulate_and_drain_resets() {
        let _g = arm();
        counter_add("sweeps", 2);
        counter_add("sweeps", 3);
        counter_add("docs", 1);
        let log = drain().unwrap();
        assert_eq!(
            log.counters,
            vec![("docs".to_string(), 1), ("sweeps".to_string(), 5)]
        );
        let log2 = drain().unwrap();
        assert!(log2.counters.is_empty() && log2.events.is_empty());
    }

    #[test]
    fn seq_numbers_order_repeated_events_at_one_path() {
        let _g = arm();
        for epoch in 0..3 {
            metric("loss", epoch, epoch as f64 * 0.5);
        }
        metric("loss", 1, 99.0); // retry of epoch 1
        let log = drain().unwrap();
        let keys: Vec<(u64, u64)> = log
            .events
            .iter()
            .map(|e| (e.unit.unwrap(), e.seq))
            .collect();
        assert_eq!(keys, vec![(0, 0), (1, 0), (1, 1), (2, 0)]);
    }

    #[test]
    fn canonical_lines_are_thread_count_independent() {
        let run = |threads: usize| {
            let _g = arm();
            let jobs: Vec<u64> = (0..6).collect();
            let work = |&job: &u64| {
                let _t = task_span("job", job);
                counter_add("jobs.done", 1);
                metric("job.value", 0, job as f64 * 1.5);
            };
            if threads == 1 {
                jobs.iter().for_each(work);
            } else {
                std::thread::scope(|s| {
                    for chunk in jobs.chunks(jobs.len() / threads) {
                        s.spawn(move || chunk.iter().for_each(work));
                    }
                });
            }
            drain().unwrap().canonical_lines()
        };
        assert_eq!(run(1), run(3));
    }

    #[test]
    fn base_name_strips_numeric_unit_suffixes_only() {
        let ev = |path: &str| Event {
            kind: EventKind::Mark,
            path: path.to_string(),
            unit: None,
            seq: 0,
            ts_ns: 0,
            tid: 0,
        };
        assert_eq!(ev("a/b/fold#12").base_name(), "fold");
        assert_eq!(ev("a/c#sharp").base_name(), "c#sharp");
        assert_eq!(ev("plain").base_name(), "plain");
    }
}
