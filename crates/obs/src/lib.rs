//! Zero-dependency observability for forumcast: hierarchical span
//! timers, monotonic counters, per-epoch training telemetry, named
//! latency histograms, and a structured event sink that renders
//! Chrome trace-event JSON (loadable in `chrome://tracing` /
//! Perfetto), a machine-readable bench report, and a human-readable
//! end-of-run summary table.
//!
//! The repo is offline, so this is built from scratch instead of
//! vendoring `tracing`. The collector is **sharded**: each recording
//! thread owns a private buffer (a [`Shard`]) registered with a
//! central registry, so the armed emit path takes no global lock —
//! only one uncontended per-thread mutex plus one atomic fetch-add
//! for the global arrival order. [`drain`] merges all shards back
//! into the canonical event log.
//!
//! # Determinism contract
//!
//! Instrumentation never feeds back into computation: probes only
//! *read* pipeline state, and timings are recorded, not consumed.
//! Event identity is logical — a full hierarchical *path* (span
//! labels, with `#unit` suffixes for indexed work like CV folds) plus
//! an occurrence sequence number per `(path, unit)` key — so two runs
//! of the same configuration produce identical canonicalized event
//! sequences regardless of thread count; only timestamps and thread
//! ids differ, and [`TraceLog::canonical_lines`] excludes both.
//!
//! Sharding preserves the contract because nothing about the merge
//! depends on which shard an event landed in: the sequence number is
//! derived from the global arrival order (an atomic counter sampled
//! at record time, so any happens-before chain between two events at
//! the same `(path, unit)` — a retry after a failed attempt, epochs
//! of one training loop — orders them identically at every thread
//! count), counters merge by commutative sum, and histogram buckets
//! merge by element-wise sum.
//!
//! Parallel work items must be delimited with [`task_span`] (a
//! *detached* span that roots its own path) so that the paths of
//! events recorded inside them do not depend on which thread — or
//! whether the single-thread inline fallback — ran the item.
//!
//! # Cost when disabled
//!
//! Every probe starts with one relaxed-ordering-free atomic load and
//! a branch; no allocation, no locking, no clock read. Hot loops
//! (Gibbs sweeps, optimizer steps) can call probes unconditionally.
//!
//! # Cost when armed
//!
//! One atomic fetch-add (arrival order) plus one lock of the
//! thread's own shard mutex, which no other thread touches until
//! [`drain`] — so concurrent emitters never serialize against each
//! other the way the pre-sharding single global mutex forced them
//! to. Shards are pooled: a worker thread exiting (or releasing via
//! [`worker_shard`]) marks its shard free for the next registered
//! thread, so long runs with many short-lived `forumcast-par` worker
//! scopes keep a bounded shard set.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

mod bench;
mod hist;
mod report;

pub use bench::{
    compare_reports, BenchComparison, BenchDelta, BenchReport, BenchSpanStat, CompareOptions,
    BENCH_SCHEMA, BENCH_VERSION,
};
pub use hist::Histogram;
pub use report::{SpanRow, Summary, TraceLog};

/// Environment variable naming the trace output file. When set, CLI
/// and bench entry points arm the collector at startup and write the
/// Chrome trace-event JSON here on exit.
pub const TRACE_ENV: &str = "FORUMCAST_TRACE";

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped on every [`arm`]; thread-local shard handles cache it and
/// re-register when it moves on.
static EPOCH: AtomicU64 = AtomicU64::new(0);
/// Global arrival order, sampled once per event with one fetch-add.
/// Sequence numbers derive from it at drain time: any two events at
/// the same `(path, unit)` with a happens-before relation get the
/// same relative order at every thread count.
static ORDER: AtomicU64 = AtomicU64::new(0);
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);
static ARM_LOCK: Mutex<()> = Mutex::new(());
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
/// Shard-pool diagnostics (not part of the drained log: they depend
/// on the thread count, which the canonical log must not).
static SHARDS_CREATED: AtomicU64 = AtomicU64::new(0);
static SHARDS_REUSED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static SHARD: RefCell<Option<ShardHandle>> = const { RefCell::new(None) };
}

struct Frame {
    path: String,
    start: Instant,
    child_ns: u64,
    detached: bool,
}

/// One thread's private event buffer. The owning thread is the only
/// writer; [`drain`] is the only other reader, so the mutex is
/// effectively uncontended on the emit path.
struct Shard {
    /// Claimed by a live thread. Cleared when the owner exits (its
    /// thread-local [`ShardHandle`] drops) so the shard returns to
    /// the pool for the next registered thread.
    busy: AtomicBool,
    data: Mutex<ShardData>,
}

#[derive(Default)]
struct ShardData {
    events: Vec<RawEvent>,
    counters: HashMap<String, u64>,
    hists: HashMap<String, Histogram>,
}

/// An event as buffered in a shard: no sequence number yet (that is
/// assigned at drain from the global arrival order).
struct RawEvent {
    kind: EventKind,
    path: String,
    unit: Option<u64>,
    order: u64,
    ts_ns: u64,
    tid: u64,
}

struct Registry {
    start: Instant,
    epoch: u64,
    shards: Vec<Arc<Shard>>,
}

/// A thread's claim on a shard; dropping it (thread exit, or
/// [`WorkerShardGuard`] release) frees the shard for reuse.
struct ShardHandle {
    epoch: u64,
    start: Instant,
    shard: Arc<Shard>,
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        self.shard.busy.store(false, Ordering::Release);
    }
}

/// What one recorded [`Event`] measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A completed timed span.
    Span {
        /// Total wall duration of the span.
        dur_ns: u64,
        /// Duration minus time spent in (non-detached) child spans on
        /// the same thread.
        self_ns: u64,
    },
    /// An instantaneous occurrence (fault firing, checkpoint hit,
    /// divergence retry).
    Mark,
    /// A sampled value indexed by a logical unit — e.g. per-epoch
    /// training loss, where `unit` is the epoch number.
    Metric {
        /// The sampled value.
        value: f64,
    },
}

/// One recorded observation. Identity is `(path, unit, seq)`:
/// deterministic for a fixed configuration, unlike `ts_ns`/`tid`.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// What was measured.
    pub kind: EventKind,
    /// Hierarchical location: span labels joined by `/`, where an
    /// indexed label is `name#unit`. For marks and metrics the final
    /// segment is the mark/metric name itself.
    pub path: String,
    /// Logical unit index (fold job, epoch, record), when indexed.
    pub unit: Option<u64>,
    /// Occurrence number among events with the same `(path, unit)`.
    pub seq: u64,
    /// Nanoseconds since the collector was armed (span start time for
    /// spans). Not deterministic.
    pub ts_ns: u64,
    /// Small per-thread id, assigned at each thread's first probe.
    /// Not deterministic.
    pub tid: u64,
}

impl Event {
    /// The final path segment — the event's own label.
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// [`Event::name`] with any `#unit` suffix stripped — the label
    /// spans of the same kind share, used for summary aggregation.
    pub fn base_name(&self) -> &str {
        let name = self.name();
        match name.rsplit_once('#') {
            Some((base, idx)) if idx.bytes().all(|b| b.is_ascii_digit()) => base,
            _ => name,
        }
    }
}

/// True when a collector is armed. Probes check this themselves;
/// callers only need it to skip *preparing* expensive inputs (e.g.
/// computing a gradient norm or formatting a dynamic name).
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Disarms the collector (and releases the arming lock) on drop.
pub struct ObsGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Release);
        *REGISTRY.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// Arms a fresh collector process-wide and returns a guard that
/// disarms it on drop. Armed scopes are serialized exactly like
/// fault plans: a second `arm` blocks until the first guard drops, so
/// concurrent tests cannot pollute each other's event logs.
pub fn arm() -> ObsGuard {
    let lock = ARM_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let epoch = EPOCH.fetch_add(1, Ordering::AcqRel) + 1;
    SHARDS_CREATED.store(0, Ordering::Relaxed);
    SHARDS_REUSED.store(0, Ordering::Relaxed);
    *REGISTRY.lock().unwrap_or_else(PoisonError::into_inner) = Some(Registry {
        start: Instant::now(),
        epoch,
        shards: Vec::new(),
    });
    ENABLED.store(true, Ordering::Release);
    ObsGuard { _lock: lock }
}

/// Arms the collector for the remainder of the process — for binaries
/// wiring up `--trace` / [`TRACE_ENV`] at startup. Later `arm` calls
/// in the same process will block forever; use [`arm`] in tests.
pub fn arm_for_process() {
    std::mem::forget(arm());
}

/// Shard-pool diagnostics for the current armed scope: how many
/// shards were freshly allocated and how many registrations reused a
/// freed shard. Thread-count dependent, so deliberately *not* part of
/// the drained log; exposed for tests and benches only.
pub fn shard_stats() -> (u64, u64) {
    (
        SHARDS_CREATED.load(Ordering::Relaxed),
        SHARDS_REUSED.load(Ordering::Relaxed),
    )
}

/// Claims (or reuses) a shard for the current thread under the
/// registry lock. Cold path: runs once per thread per armed scope.
fn register_shard(epoch: u64) -> Option<ShardHandle> {
    let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    let reg = reg.as_mut()?;
    if reg.epoch != epoch {
        // A different arm than the one the caller observed; register
        // against it anyway — the epoch check next probe resolves it.
    }
    for shard in &reg.shards {
        if shard
            .busy
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            SHARDS_REUSED.fetch_add(1, Ordering::Relaxed);
            return Some(ShardHandle {
                epoch: reg.epoch,
                start: reg.start,
                shard: Arc::clone(shard),
            });
        }
    }
    let shard = Arc::new(Shard {
        busy: AtomicBool::new(true),
        data: Mutex::new(ShardData::default()),
    });
    reg.shards.push(Arc::clone(&shard));
    SHARDS_CREATED.fetch_add(1, Ordering::Relaxed);
    Some(ShardHandle {
        epoch: reg.epoch,
        start: reg.start,
        shard,
    })
}

/// Runs `f` against the current thread's shard, registering one if
/// needed. Returns `None` when no registry is armed (probe raced a
/// disarm) — the observation is dropped, which is fine: the guard
/// that disarmed has already drained.
fn with_shard<R>(f: impl FnOnce(&mut ShardData, Instant) -> R) -> Option<R> {
    SHARD.with(|slot| {
        let mut slot = slot.borrow_mut();
        let epoch = EPOCH.load(Ordering::Acquire);
        if slot.as_ref().map(|h| h.epoch) != Some(epoch) {
            *slot = None; // drop the stale claim first, freeing it
            *slot = register_shard(epoch);
        }
        let handle = slot.as_ref()?;
        let mut data = handle
            .shard
            .data
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Some(f(&mut data, handle.start))
    })
}

/// Eagerly registers the current thread's shard and, on drop,
/// releases it back to the pool. `forumcast-par` holds one per
/// worker-thread lifetime so (a) registration cost lands before the
/// timed work, and (b) shards recycle as soon as the worker scope
/// ends instead of waiting for thread-local destructors — keeping
/// the shard set bounded by the *concurrent* worker count across
/// arbitrarily many parallel sections.
#[must_use = "the guard holds the worker's shard claim"]
pub struct WorkerShardGuard {
    _priv: (),
}

/// See [`WorkerShardGuard`]. A no-op when the collector is disarmed.
pub fn worker_shard() -> WorkerShardGuard {
    if is_enabled() {
        let _ = with_shard(|_, _| ());
    }
    WorkerShardGuard { _priv: () }
}

impl Drop for WorkerShardGuard {
    fn drop(&mut self) {
        // Release even if the collector disarmed meanwhile: a stale
        // handle would otherwise pin its shard until thread exit.
        let _ = SHARD.try_with(|slot| slot.borrow_mut().take());
    }
}

/// Snapshots everything recorded since arming (or the previous drain)
/// into a [`TraceLog`] with canonically ordered events, leaving the
/// collector armed and empty. `None` when no collector is armed.
///
/// The merge is thread-count independent: events sort by
/// `(path, unit, arrival order)` and the per-`(path, unit)` sequence
/// number is their rank in that order; counters sum; histogram
/// buckets sum.
pub fn drain() -> Option<TraceLog> {
    let mut raw: Vec<RawEvent> = Vec::new();
    let mut counter_map: HashMap<String, u64> = HashMap::new();
    let mut hist_map: HashMap<String, Histogram> = HashMap::new();
    let wall_ns = {
        let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
        let reg = reg.as_mut()?;
        for shard in &reg.shards {
            let mut data = shard.data.lock().unwrap_or_else(PoisonError::into_inner);
            raw.append(&mut data.events);
            for (name, total) in data.counters.drain() {
                *counter_map.entry(name).or_insert(0) += total;
            }
            for (name, hist) in data.hists.drain() {
                match hist_map.get_mut(&name) {
                    Some(merged) => merged.merge(&hist),
                    None => {
                        hist_map.insert(name, hist);
                    }
                }
            }
        }
        reg.start.elapsed().as_nanos() as u64
    };
    // Canonical total order: (path, unit, seq) is unique — seq ranks
    // same-(path, unit) occurrences by global arrival order — and
    // none of the three depend on thread count or wall clock.
    raw.sort_by(|a, b| (a.path.as_str(), a.unit, a.order).cmp(&(b.path.as_str(), b.unit, b.order)));
    let mut events: Vec<Event> = Vec::with_capacity(raw.len());
    for ev in raw {
        let seq = match events.last() {
            Some(prev) if prev.path == ev.path && prev.unit == ev.unit => prev.seq + 1,
            _ => 0,
        };
        events.push(Event {
            kind: ev.kind,
            path: ev.path,
            unit: ev.unit,
            seq,
            ts_ns: ev.ts_ns,
            tid: ev.tid,
        });
    }
    let mut counters: Vec<(String, u64)> = counter_map.into_iter().collect();
    counters.sort();
    let mut hists: Vec<(String, Histogram)> = hist_map.into_iter().collect();
    hists.sort_by(|a, b| a.0.cmp(&b.0));
    Some(TraceLog {
        events,
        counters,
        hists,
        wall_ns,
    })
}

/// Times a scope as a child of the current thread's innermost span.
/// Record on drop; a no-op (no allocation, no clock read) when the
/// collector is disarmed.
#[must_use = "a span measures the scope holding the guard"]
pub fn span(name: &str) -> SpanGuard {
    span_impl(name, None, false)
}

/// [`span`] with a logical unit index: labeled `name#unit` so
/// repeated indexed work (bucket 0, bucket 1, …) gets distinct paths.
#[must_use = "a span measures the scope holding the guard"]
pub fn span_unit(name: &str, unit: u64) -> SpanGuard {
    span_impl(name, Some(unit), false)
}

/// A *detached* span for one parallel work item (e.g. one CV fold):
/// its path roots at `name#unit` regardless of what the executing
/// thread was doing, and its duration is *not* charged to any parent
/// span's child time. This keeps event paths identical whether the
/// item ran on a worker thread or on the caller via the single-thread
/// inline fallback.
#[must_use = "a span measures the scope holding the guard"]
pub fn task_span(name: &str, unit: u64) -> SpanGuard {
    span_impl(name, Some(unit), true)
}

fn span_impl(name: &str, unit: Option<u64>, detached: bool) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard {
            active: false,
            unit: None,
        };
    }
    let label = match unit {
        Some(u) => format!("{name}#{u}"),
        None => name.to_string(),
    };
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let path = match stack.last() {
            Some(parent) if !detached => format!("{}/{label}", parent.path),
            _ => label,
        };
        stack.push(Frame {
            path,
            start: Instant::now(),
            child_ns: 0,
            detached,
        });
    });
    SpanGuard { active: true, unit }
}

/// Ends its span on drop, recording duration and self time.
pub struct SpanGuard {
    active: bool,
    unit: Option<u64>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let Some(frame) = STACK.with(|s| s.borrow_mut().pop()) else {
            return;
        };
        let dur_ns = frame.start.elapsed().as_nanos() as u64;
        if !frame.detached {
            STACK.with(|s| {
                if let Some(parent) = s.borrow_mut().last_mut() {
                    parent.child_ns += dur_ns;
                }
            });
        }
        let self_ns = dur_ns.saturating_sub(frame.child_ns);
        record(
            EventKind::Span { dur_ns, self_ns },
            frame.path,
            self.unit,
            frame.start,
        );
    }
}

/// Adds `delta` to the named monotonic counter.
pub fn counter_add(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    with_shard(|data, _| match data.counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            data.counters.insert(name.to_string(), delta);
        }
    });
}

/// Records `value` into the named latency histogram — the scalable
/// path for high-frequency per-operation measurements (checkpoint
/// write/read times, per-request latencies): each observation is one
/// bucket increment in the thread's shard, not an event allocation,
/// and shards merge by bucket sum at [`drain`]. Values are
/// unit-agnostic; by convention the name carries the unit
/// (`ckpt.subfold.write_ms`). Summaries report count/p50/p90/p99/max.
pub fn observe(name: &str, value: u64) {
    if !is_enabled() {
        return;
    }
    with_shard(|data, _| match data.hists.get_mut(name) {
        Some(h) => h.record(value),
        None => {
            let mut h = Histogram::new();
            h.record(value);
            data.hists.insert(name.to_string(), h);
        }
    });
}

/// Records a sampled value for logical unit `unit` (e.g. per-epoch
/// training loss, `unit` = epoch index) under the current span path.
pub fn metric(name: &str, unit: u64, value: f64) {
    if !is_enabled() {
        return;
    }
    record(
        EventKind::Metric { value },
        path_under_current(name),
        Some(unit),
        Instant::now(),
    );
}

/// Records an instantaneous occurrence for logical unit `unit` (fault
/// firing, checkpoint hit, retry) under the current span path.
pub fn mark(name: &str, unit: u64) {
    if !is_enabled() {
        return;
    }
    record(
        EventKind::Mark,
        path_under_current(name),
        Some(unit),
        Instant::now(),
    );
}

/// Peak resident set size of this process in KiB, read from the
/// `VmHWM` line of `/proc/self/status`. Returns 0 when the procfs
/// field is unavailable (non-Linux), so callers can gate the report
/// on a non-zero value instead of special-casing platforms. Used by
/// the streamed-fold evaluation path and the check.sh RSS smoke to
/// assert that spilling keeps only one fold resident.
pub fn peak_rss_kb() -> u64 {
    let status = match std::fs::read_to_string("/proc/self/status") {
        Ok(s) => s,
        Err(_) => return 0,
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

fn path_under_current(name: &str) -> String {
    STACK.with(|s| match s.borrow().last() {
        Some(parent) => format!("{}/{name}", parent.path),
        None => name.to_string(),
    })
}

fn record(kind: EventKind, path: String, unit: Option<u64>, at: Instant) {
    let tid = TID.with(|t| *t);
    let order = ORDER.fetch_add(1, Ordering::Relaxed);
    with_shard(|data, start| {
        let ts_ns = at.saturating_duration_since(start).as_nanos() as u64;
        data.events.push(RawEvent {
            kind,
            path,
            unit,
            order,
            ts_ns,
            tid,
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_nonzero_on_linux_and_never_panics() {
        let kb = peak_rss_kb();
        if cfg!(target_os = "linux") {
            assert!(kb > 0, "VmHWM should be readable on Linux");
        }
    }

    #[test]
    fn disabled_probes_are_inert() {
        assert!(!is_enabled());
        let _s = span("never");
        counter_add("never", 1);
        metric("never", 0, 1.0);
        mark("never", 0);
        observe("never", 1);
        assert!(drain().is_none());
    }

    #[test]
    fn spans_nest_and_account_self_vs_child_time() {
        let _g = arm();
        {
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let log = drain().unwrap();
        let paths: Vec<&str> = log.events.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer/inner"]);
        let outer = &log.events[0];
        let inner = &log.events[1];
        let (EventKind::Span { dur_ns, self_ns }, EventKind::Span { dur_ns: in_dur, .. }) =
            (&outer.kind, &inner.kind)
        else {
            panic!("expected span events");
        };
        assert!(dur_ns >= in_dur, "outer contains inner");
        assert_eq!(self_ns + in_dur, *dur_ns, "self = dur - child");
    }

    #[test]
    fn task_spans_root_their_own_paths() {
        let _g = arm();
        {
            let _outer = span("outer");
            let _fold = task_span("fold", 3);
            let _step = span("step");
            mark("hit", 7);
        }
        let log = drain().unwrap();
        let paths: Vec<&str> = log.events.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["fold#3", "fold#3/step", "fold#3/step/hit", "outer"]
        );
        // Detached time is not charged to the parent.
        let outer = log.events.iter().find(|e| e.path == "outer").unwrap();
        let fold = log.events.iter().find(|e| e.path == "fold#3").unwrap();
        let (EventKind::Span { self_ns, .. }, EventKind::Span { dur_ns, .. }) =
            (&outer.kind, &fold.kind)
        else {
            panic!("expected span events");
        };
        let _ = (self_ns, dur_ns); // self accounting checked structurally above
    }

    #[test]
    fn counters_accumulate_and_drain_resets() {
        let _g = arm();
        counter_add("sweeps", 2);
        counter_add("sweeps", 3);
        counter_add("docs", 1);
        let log = drain().unwrap();
        assert_eq!(
            log.counters,
            vec![("docs".to_string(), 1), ("sweeps".to_string(), 5)]
        );
        let log2 = drain().unwrap();
        assert!(log2.counters.is_empty() && log2.events.is_empty());
    }

    #[test]
    fn seq_numbers_order_repeated_events_at_one_path() {
        let _g = arm();
        for epoch in 0..3 {
            metric("loss", epoch, epoch as f64 * 0.5);
        }
        metric("loss", 1, 99.0); // retry of epoch 1
        let log = drain().unwrap();
        let keys: Vec<(u64, u64)> = log
            .events
            .iter()
            .map(|e| (e.unit.unwrap(), e.seq))
            .collect();
        assert_eq!(keys, vec![(0, 0), (1, 0), (1, 1), (2, 0)]);
    }

    #[test]
    fn seq_respects_happens_before_across_threads() {
        // A sequential retry chain that hops threads — attempt 1 on
        // one worker, attempt 2 on another — must keep its temporal
        // order in `seq`, because the second attempt's arrival order
        // is sampled strictly after the first attempt finished.
        let _g = arm();
        for attempt in [1.0f64, 2.0] {
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _t = task_span("job", 0);
                    metric("attempt", 0, attempt);
                });
            });
        }
        let log = drain().unwrap();
        let vals: Vec<(u64, f64)> = log
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Metric { value } => Some((e.seq, value)),
                _ => None,
            })
            .collect();
        assert_eq!(vals, vec![(0, 1.0), (1, 2.0)]);
    }

    #[test]
    fn canonical_lines_are_thread_count_independent() {
        let run = |threads: usize| {
            let _g = arm();
            let jobs: Vec<u64> = (0..6).collect();
            let work = |&job: &u64| {
                let _t = task_span("job", job);
                counter_add("jobs.done", 1);
                observe("job.latency", job + 10);
                metric("job.value", 0, job as f64 * 1.5);
            };
            if threads == 1 {
                jobs.iter().for_each(work);
            } else {
                std::thread::scope(|s| {
                    for chunk in jobs.chunks(jobs.len() / threads) {
                        s.spawn(move || chunk.iter().for_each(work));
                    }
                });
            }
            drain().unwrap().canonical_lines()
        };
        assert_eq!(run(1), run(3));
    }

    #[test]
    fn armed_emit_takes_no_global_lock() {
        // Regression guard for the sharding refactor: while one
        // thread holds its own shard mutex mid-emit, another thread
        // must still be able to emit. With the old global mutex this
        // deadlocks/times out; with shards both proceed.
        let _g = arm();
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for i in 0..10_000 {
                        let _sp = task_span("hammer", t);
                        counter_add("hits", 1);
                        let _ = i;
                    }
                });
            }
        });
        let log = drain().unwrap();
        assert_eq!(
            log.counters,
            vec![("hits".to_string(), 20_000)],
            "all emits from both threads must land"
        );
        let (created, _reused) = shard_stats();
        assert!(created >= 2, "each concurrent thread gets its own shard");
    }

    #[test]
    fn shards_recycle_across_worker_scopes() {
        let _g = arm();
        for round in 0..5u64 {
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _w = worker_shard();
                    counter_add("round.hits", 1);
                    mark("round", round);
                });
            });
        }
        let log = drain().unwrap();
        assert_eq!(log.counters, vec![("round.hits".to_string(), 5)]);
        let (created, reused) = shard_stats();
        assert!(
            created <= 2,
            "sequential workers must reuse pooled shards, created {created}"
        );
        assert!(reused >= 3, "expected pool hits, got {reused}");
    }

    #[test]
    fn observe_merges_histograms_across_threads() {
        let run = |threads: usize| {
            let _g = arm();
            let values: Vec<u64> = (1..=100).collect();
            if threads == 1 {
                for &v in &values {
                    observe("lat", v);
                }
            } else {
                std::thread::scope(|s| {
                    for chunk in values.chunks(values.len() / threads) {
                        s.spawn(move || {
                            for &v in chunk {
                                observe("lat", v);
                            }
                        });
                    }
                });
            }
            drain().unwrap()
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.hists, four.hists, "bucket sums are order-free");
        let (name, h) = &one.hists[0];
        assert_eq!(name, "lat");
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        assert!(h.quantile(0.5) >= 48 && h.quantile(0.5) <= 52);
    }

    #[test]
    fn base_name_strips_numeric_unit_suffixes_only() {
        let ev = |path: &str| Event {
            kind: EventKind::Mark,
            path: path.to_string(),
            unit: None,
            seq: 0,
            ts_ns: 0,
            tid: 0,
        };
        assert_eq!(ev("a/b/fold#12").base_name(), "fold");
        assert_eq!(ev("a/c#sharp").base_name(), "c#sharp");
        assert_eq!(ev("plain").base_name(), "plain");
    }
}
