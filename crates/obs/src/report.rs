//! Rendering a drained event log: Chrome trace-event JSON for
//! `chrome://tracing` / Perfetto, a canonical text form for
//! determinism tests, and a human-readable summary table with
//! per-span latency percentiles.

use crate::{Event, EventKind, Histogram};
use std::collections::HashMap;

/// Everything recorded between arming (or the previous drain) and one
/// [`crate::drain`] call: canonically ordered events, name-sorted
/// counter totals, name-sorted value histograms, and the wall time
/// covered.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLog {
    /// Events in canonical `(path, unit, seq)` order.
    pub events: Vec<Event>,
    /// `(name, total)` counter pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` pairs from [`crate::observe`], sorted by
    /// name. Bucket counts are merged across shards by sum, so the
    /// table is thread-count independent.
    pub hists: Vec<(String, Histogram)>,
    /// Nanoseconds from arming to the drain.
    pub wall_ns: u64,
}

impl TraceLog {
    /// Renders the log as Chrome trace-event JSON: spans as complete
    /// (`"ph":"X"`) events, marks as instants (`"ph":"i"`), metrics
    /// and final counter totals as counter (`"ph":"C"`) events.
    /// Timestamps are microseconds. Load the file via `chrome://tracing`
    /// or <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 160);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: String, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(&s);
        };
        for ev in &self.events {
            let name = escape_json(ev.name());
            let path = escape_json(&ev.path);
            let ts = us(ev.ts_ns);
            let entry = match ev.kind {
                EventKind::Span { dur_ns, self_ns } => format!(
                    "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":1,\
                     \"tid\":{},\"args\":{{\"path\":\"{path}\",\"self_us\":{}}}}}",
                    us(dur_ns),
                    ev.tid,
                    us(self_ns),
                ),
                EventKind::Mark => format!(
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":1,\
                     \"tid\":{},\"args\":{{\"path\":\"{path}\",\"unit\":{}}}}}",
                    ev.tid,
                    ev.unit.map_or("null".to_string(), |u| u.to_string()),
                ),
                EventKind::Metric { value } => format!(
                    "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\
                     \"args\":{{\"value\":{},\"unit\":{}}}}}",
                    json_f64(value),
                    ev.unit.map_or("null".to_string(), |u| u.to_string()),
                ),
            };
            push(entry, &mut out);
        }
        for (cname, total) in &self.counters {
            let entry = format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                 \"args\":{{\"value\":{total}}}}}",
                escape_json(cname),
                us(self.wall_ns),
            );
            push(entry, &mut out);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Renders only the deterministic projection of the log — paths,
    /// units, sequence numbers, exact metric bits, counter totals,
    /// histogram bucket tables; no timestamps, durations, or thread
    /// ids. Two runs of the same configuration must produce identical
    /// canonical lines at any thread count.
    pub fn canonical_lines(&self) -> Vec<String> {
        let mut lines =
            Vec::with_capacity(self.events.len() + self.counters.len() + self.hists.len());
        for ev in &self.events {
            let unit = ev.unit.map_or("-".to_string(), |u| u.to_string());
            lines.push(match ev.kind {
                EventKind::Span { .. } => {
                    format!("span {} unit={unit} seq={}", ev.path, ev.seq)
                }
                EventKind::Mark => {
                    format!("mark {} unit={unit} seq={}", ev.path, ev.seq)
                }
                EventKind::Metric { value } => format!(
                    "metric {} unit={unit} seq={} bits={:016x}",
                    ev.path,
                    ev.seq,
                    value.to_bits()
                ),
            });
        }
        for (name, total) in &self.counters {
            lines.push(format!("counter {name} = {total}"));
        }
        for (name, hist) in &self.hists {
            let buckets: Vec<String> = hist
                .nonzero_buckets()
                .map(|(floor, count)| format!("{floor}:{count}"))
                .collect();
            lines.push(format!(
                "hist {name} count={} sum={} max={} buckets=[{}]",
                hist.count(),
                hist.sum(),
                hist.max(),
                buckets.join(",")
            ));
        }
        lines
    }

    /// Aggregates the log into a [`Summary`]: one row per span label
    /// (unit suffixes stripped) with call count, total and self time,
    /// and a duration histogram over the label's calls (p50/p90/p99/
    /// max), plus wall-time coverage by the longest root span and the
    /// named value histograms from [`crate::observe`].
    pub fn summary(&self) -> Summary {
        let mut agg: HashMap<String, SpanRow> = HashMap::new();
        let mut root_ns: u64 = 0;
        for ev in &self.events {
            let EventKind::Span { dur_ns, self_ns } = ev.kind else {
                continue;
            };
            if !ev.path.contains('/') {
                root_ns = root_ns.max(dur_ns);
            }
            let row = agg
                .entry(ev.base_name().to_string())
                .or_insert_with(|| SpanRow {
                    name: ev.base_name().to_string(),
                    calls: 0,
                    total_ns: 0,
                    self_ns: 0,
                    durations: Histogram::new(),
                });
            row.calls += 1;
            row.total_ns += dur_ns;
            row.self_ns += self_ns;
            row.durations.record(dur_ns);
        }
        let mut rows: Vec<SpanRow> = agg.into_values().collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        Summary {
            wall_ns: self.wall_ns,
            covered_ns: root_ns,
            rows,
            counters: self.counters.clone(),
            hists: self.hists.clone(),
        }
    }
}

/// One aggregated span line in a [`Summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRow {
    /// Span label with unit suffixes stripped.
    pub name: String,
    /// How many spans with this label completed.
    pub calls: u64,
    /// Summed wall duration across calls.
    pub total_ns: u64,
    /// Summed self time (duration minus same-thread child spans).
    pub self_ns: u64,
    /// Log-bucket histogram over the per-call wall durations (ns) —
    /// p50/p90/p99/max come from here.
    pub durations: Histogram,
}

impl SpanRow {
    /// Median per-call duration in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.durations.quantile(0.50)
    }

    /// 90th-percentile per-call duration in nanoseconds.
    pub fn p90_ns(&self) -> u64 {
        self.durations.quantile(0.90)
    }

    /// 99th-percentile per-call duration in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.durations.quantile(0.99)
    }

    /// Longest single call in nanoseconds (exact).
    pub fn max_ns(&self) -> u64 {
        self.durations.max()
    }
}

/// End-of-run aggregate view of a [`TraceLog`], rendered by
/// [`Summary::render`].
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Wall time from arming to drain.
    pub wall_ns: u64,
    /// Duration of the longest root span — how much of the wall the
    /// span hierarchy accounts for.
    pub covered_ns: u64,
    /// Per-label rows, longest total first.
    pub rows: Vec<SpanRow>,
    /// `(name, total)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` value histograms, sorted by name.
    pub hists: Vec<(String, Histogram)>,
}

impl Summary {
    /// Fraction of wall time covered by the longest root span, in
    /// `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.covered_ns as f64 / self.wall_ns as f64
        }
    }

    /// Renders the summary table: wall line, one row per span label
    /// (calls, total, self, p50/p99/max per call, share of wall),
    /// then counter totals, then the value-histogram table
    /// (count/p50/p90/p99/max/sum in the recorded unit).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== metrics: wall {} ({:.1}% covered by spans) ==\n",
            fmt_dur(self.wall_ns),
            self.coverage() * 100.0
        ));
        if self.rows.is_empty() {
            out.push_str("(no spans recorded)\n");
        } else {
            let name_w = self
                .rows
                .iter()
                .map(|r| r.name.len())
                .max()
                .unwrap_or(4)
                .max(4);
            out.push_str(&format!(
                "{:<name_w$}  {:>6}  {:>10}  {:>10}  {:>9}  {:>9}  {:>9}  {:>6}\n",
                "span", "calls", "total", "self", "p50", "p99", "max", "%wall"
            ));
            for row in &self.rows {
                let pct = if self.wall_ns == 0 {
                    0.0
                } else {
                    row.total_ns as f64 / self.wall_ns as f64 * 100.0
                };
                out.push_str(&format!(
                    "{:<name_w$}  {:>6}  {:>10}  {:>10}  {:>9}  {:>9}  {:>9}  {:>5.1}%\n",
                    row.name,
                    row.calls,
                    fmt_dur(row.total_ns),
                    fmt_dur(row.self_ns),
                    fmt_dur(row.p50_ns()),
                    fmt_dur(row.p99_ns()),
                    fmt_dur(row.max_ns()),
                    pct
                ));
            }
        }
        if !self.counters.is_empty() {
            let name_w = self
                .counters
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(7)
                .max(7);
            out.push_str(&format!("{:<name_w$}  {:>12}\n", "counter", "total"));
            for (name, total) in &self.counters {
                out.push_str(&format!("{name:<name_w$}  {total:>12}\n"));
            }
        }
        if !self.hists.is_empty() {
            let name_w = self
                .hists
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(9)
                .max(9);
            out.push_str(&format!(
                "{:<name_w$}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}  {:>10}\n",
                "histogram", "count", "p50", "p90", "p99", "max", "sum"
            ));
            for (name, h) in &self.hists {
                out.push_str(&format!(
                    "{name:<name_w$}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}  {:>10}\n",
                    h.count(),
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                    h.max(),
                    h.sum()
                ));
            }
        }
        out
    }
}

/// Nanoseconds rendered as microseconds with sub-µs precision — the
/// unit Chrome trace timestamps use.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// A human-friendly duration: picks ns/µs/ms/s by magnitude.
fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// A JSON number for `v`, or `null` when `v` is not finite (NaN
/// losses from divergence probes must not corrupt the trace file).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` omits the decimal point for integral values;
        // keep it so strict parsers see a float consistently.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn ev(kind: EventKind, path: &str, unit: Option<u64>, seq: u64) -> Event {
        Event {
            kind,
            path: path.to_string(),
            unit,
            seq,
            ts_ns: 1_500,
            tid: 0,
        }
    }

    fn sample() -> TraceLog {
        let mut write_ms = Histogram::new();
        for v in [3u64, 4, 9] {
            write_ms.record(v);
        }
        TraceLog {
            events: vec![
                ev(
                    EventKind::Span {
                        dur_ns: 9_000_000,
                        self_ns: 4_000_000,
                    },
                    "run",
                    None,
                    0,
                ),
                ev(
                    EventKind::Span {
                        dur_ns: 5_000_000,
                        self_ns: 5_000_000,
                    },
                    "run/fold#0",
                    Some(0),
                    0,
                ),
                ev(EventKind::Mark, "run/fold#0/ckpt.hit", Some(0), 0),
                ev(
                    EventKind::Metric { value: f64::NAN },
                    "run/fold#0/loss",
                    Some(2),
                    0,
                ),
            ],
            counters: vec![("sweeps".to_string(), 42)],
            hists: vec![("ckpt.write_ms".to_string(), write_ms)],
            wall_ns: 10_000_000,
        }
    }

    #[test]
    fn chrome_json_parses_and_maps_nan_to_null() {
        let json = sample().to_chrome_json();
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let serde::Value::Object(fields) = &v else {
            panic!("expected object")
        };
        let events = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents");
        let serde::Value::Array(items) = events else {
            panic!("expected array")
        };
        assert_eq!(items.len(), 5); // 4 events + 1 counter total
        assert!(json.contains("\"value\":null"), "NaN must become null");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
    }

    #[test]
    fn canonical_lines_exclude_timing_and_tid() {
        let mut log = sample();
        let base = log.canonical_lines();
        for e in &mut log.events {
            e.ts_ns += 12_345;
            e.tid += 7;
        }
        log.wall_ns += 999;
        assert_eq!(log.canonical_lines(), base);
        assert!(base.iter().any(|l| l.starts_with("counter sweeps = 42")));
        assert!(
            base.iter()
                .any(|l| l.starts_with("hist ckpt.write_ms count=3 sum=16 max=9")),
            "histograms must appear in the canonical projection: {base:?}"
        );
    }

    #[test]
    fn summary_aggregates_by_base_name_and_measures_coverage() {
        let s = sample().summary();
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.rows[0].name, "run");
        assert_eq!(s.rows[1].name, "fold");
        assert!((s.coverage() - 0.9).abs() < 1e-9);
        let rendered = s.render();
        assert!(rendered.contains("90.0% covered"));
        assert!(rendered.contains("sweeps"));
        assert!(rendered.contains("histogram"), "{rendered}");
        assert!(rendered.contains("ckpt.write_ms"), "{rendered}");
    }

    #[test]
    fn span_rows_report_percentiles_over_calls() {
        let durs = [1_000_000u64, 2_000_000, 3_000_000, 50_000_000];
        let events = durs
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                ev(
                    EventKind::Span {
                        dur_ns: d,
                        self_ns: d,
                    },
                    "work",
                    None,
                    i as u64,
                )
            })
            .collect();
        let log = TraceLog {
            events,
            counters: vec![],
            hists: vec![],
            wall_ns: 60_000_000,
        };
        let s = log.summary();
        let row = &s.rows[0];
        assert_eq!(row.calls, 4);
        assert_eq!(row.max_ns(), 50_000_000);
        // p50 lands in the bucket holding the 2nd smallest (2 ms),
        // within the 3.1% bucket error.
        let p50 = row.p50_ns() as f64;
        assert!((1.9e6..=2.0e6).contains(&p50), "p50={p50}");
        // p99 of 4 calls is the max's bucket.
        assert!(row.p99_ns() as f64 >= 48.4e6, "p99={}", row.p99_ns());
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_dur(12), "12ns");
        assert_eq!(fmt_dur(1_500), "1.5us");
        assert_eq!(fmt_dur(2_500_000), "2.50ms");
        assert_eq!(fmt_dur(3_210_000_000), "3.210s");
    }

    #[test]
    fn json_numbers_stay_floats() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
