//! Rendering a drained event log: Chrome trace-event JSON for
//! `chrome://tracing` / Perfetto, a canonical text form for
//! determinism tests, and a human-readable summary table.

use crate::{Event, EventKind};
use std::collections::HashMap;

/// Everything recorded between arming (or the previous drain) and one
/// [`crate::drain`] call: canonically ordered events, name-sorted
/// counter totals, and the wall time covered.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLog {
    /// Events in canonical `(path, unit, seq)` order.
    pub events: Vec<Event>,
    /// `(name, total)` counter pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Nanoseconds from arming to the drain.
    pub wall_ns: u64,
}

impl TraceLog {
    /// Renders the log as Chrome trace-event JSON: spans as complete
    /// (`"ph":"X"`) events, marks as instants (`"ph":"i"`), metrics
    /// and final counter totals as counter (`"ph":"C"`) events.
    /// Timestamps are microseconds. Load the file via `chrome://tracing`
    /// or <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 160);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: String, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(&s);
        };
        for ev in &self.events {
            let name = escape_json(ev.name());
            let path = escape_json(&ev.path);
            let ts = us(ev.ts_ns);
            let entry = match ev.kind {
                EventKind::Span { dur_ns, self_ns } => format!(
                    "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":1,\
                     \"tid\":{},\"args\":{{\"path\":\"{path}\",\"self_us\":{}}}}}",
                    us(dur_ns),
                    ev.tid,
                    us(self_ns),
                ),
                EventKind::Mark => format!(
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":1,\
                     \"tid\":{},\"args\":{{\"path\":\"{path}\",\"unit\":{}}}}}",
                    ev.tid,
                    ev.unit.map_or("null".to_string(), |u| u.to_string()),
                ),
                EventKind::Metric { value } => format!(
                    "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\
                     \"args\":{{\"value\":{},\"unit\":{}}}}}",
                    json_f64(value),
                    ev.unit.map_or("null".to_string(), |u| u.to_string()),
                ),
            };
            push(entry, &mut out);
        }
        for (cname, total) in &self.counters {
            let entry = format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                 \"args\":{{\"value\":{total}}}}}",
                escape_json(cname),
                us(self.wall_ns),
            );
            push(entry, &mut out);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Renders only the deterministic projection of the log — paths,
    /// units, sequence numbers, exact metric bits, counter totals; no
    /// timestamps, durations, or thread ids. Two runs of the same
    /// configuration must produce identical canonical lines at any
    /// thread count.
    pub fn canonical_lines(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.events.len() + self.counters.len());
        for ev in &self.events {
            let unit = ev.unit.map_or("-".to_string(), |u| u.to_string());
            lines.push(match ev.kind {
                EventKind::Span { .. } => {
                    format!("span {} unit={unit} seq={}", ev.path, ev.seq)
                }
                EventKind::Mark => {
                    format!("mark {} unit={unit} seq={}", ev.path, ev.seq)
                }
                EventKind::Metric { value } => format!(
                    "metric {} unit={unit} seq={} bits={:016x}",
                    ev.path,
                    ev.seq,
                    value.to_bits()
                ),
            });
        }
        for (name, total) in &self.counters {
            lines.push(format!("counter {name} = {total}"));
        }
        lines
    }

    /// Aggregates the log into a [`Summary`]: one row per span label
    /// (unit suffixes stripped) with call count, total, and self
    /// time, plus wall-time coverage by the longest root span.
    pub fn summary(&self) -> Summary {
        let mut agg: HashMap<String, SpanRow> = HashMap::new();
        let mut root_ns: u64 = 0;
        for ev in &self.events {
            let EventKind::Span { dur_ns, self_ns } = ev.kind else {
                continue;
            };
            if !ev.path.contains('/') {
                root_ns = root_ns.max(dur_ns);
            }
            let row = agg
                .entry(ev.base_name().to_string())
                .or_insert_with(|| SpanRow {
                    name: ev.base_name().to_string(),
                    calls: 0,
                    total_ns: 0,
                    self_ns: 0,
                });
            row.calls += 1;
            row.total_ns += dur_ns;
            row.self_ns += self_ns;
        }
        let mut rows: Vec<SpanRow> = agg.into_values().collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        Summary {
            wall_ns: self.wall_ns,
            covered_ns: root_ns,
            rows,
            counters: self.counters.clone(),
        }
    }
}

/// One aggregated span line in a [`Summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRow {
    /// Span label with unit suffixes stripped.
    pub name: String,
    /// How many spans with this label completed.
    pub calls: u64,
    /// Summed wall duration across calls.
    pub total_ns: u64,
    /// Summed self time (duration minus same-thread child spans).
    pub self_ns: u64,
}

/// End-of-run aggregate view of a [`TraceLog`], rendered by
/// [`Summary::render`].
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Wall time from arming to drain.
    pub wall_ns: u64,
    /// Duration of the longest root span — how much of the wall the
    /// span hierarchy accounts for.
    pub covered_ns: u64,
    /// Per-label rows, longest total first.
    pub rows: Vec<SpanRow>,
    /// `(name, total)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl Summary {
    /// Fraction of wall time covered by the longest root span, in
    /// `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.covered_ns as f64 / self.wall_ns as f64
        }
    }

    /// Renders the summary table: wall line, one row per span label
    /// (calls, total, self, share of wall), then counter totals.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== metrics: wall {} ({:.1}% covered by spans) ==\n",
            fmt_dur(self.wall_ns),
            self.coverage() * 100.0
        ));
        if self.rows.is_empty() {
            out.push_str("(no spans recorded)\n");
        } else {
            let name_w = self
                .rows
                .iter()
                .map(|r| r.name.len())
                .max()
                .unwrap_or(4)
                .max(4);
            out.push_str(&format!(
                "{:<name_w$}  {:>6}  {:>10}  {:>10}  {:>6}\n",
                "span", "calls", "total", "self", "%wall"
            ));
            for row in &self.rows {
                let pct = if self.wall_ns == 0 {
                    0.0
                } else {
                    row.total_ns as f64 / self.wall_ns as f64 * 100.0
                };
                out.push_str(&format!(
                    "{:<name_w$}  {:>6}  {:>10}  {:>10}  {:>5.1}%\n",
                    row.name,
                    row.calls,
                    fmt_dur(row.total_ns),
                    fmt_dur(row.self_ns),
                    pct
                ));
            }
        }
        if !self.counters.is_empty() {
            let name_w = self
                .counters
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(7)
                .max(7);
            out.push_str(&format!("{:<name_w$}  {:>12}\n", "counter", "total"));
            for (name, total) in &self.counters {
                out.push_str(&format!("{name:<name_w$}  {total:>12}\n"));
            }
        }
        out
    }
}

/// Nanoseconds rendered as microseconds with sub-µs precision — the
/// unit Chrome trace timestamps use.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// A human-friendly duration: picks ns/µs/ms/s by magnitude.
fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// A JSON number for `v`, or `null` when `v` is not finite (NaN
/// losses from divergence probes must not corrupt the trace file).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` omits the decimal point for integral values;
        // keep it so strict parsers see a float consistently.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn ev(kind: EventKind, path: &str, unit: Option<u64>, seq: u64) -> Event {
        Event {
            kind,
            path: path.to_string(),
            unit,
            seq,
            ts_ns: 1_500,
            tid: 0,
        }
    }

    fn sample() -> TraceLog {
        TraceLog {
            events: vec![
                ev(
                    EventKind::Span {
                        dur_ns: 9_000_000,
                        self_ns: 4_000_000,
                    },
                    "run",
                    None,
                    0,
                ),
                ev(
                    EventKind::Span {
                        dur_ns: 5_000_000,
                        self_ns: 5_000_000,
                    },
                    "run/fold#0",
                    Some(0),
                    0,
                ),
                ev(EventKind::Mark, "run/fold#0/ckpt.hit", Some(0), 0),
                ev(
                    EventKind::Metric { value: f64::NAN },
                    "run/fold#0/loss",
                    Some(2),
                    0,
                ),
            ],
            counters: vec![("sweeps".to_string(), 42)],
            wall_ns: 10_000_000,
        }
    }

    #[test]
    fn chrome_json_parses_and_maps_nan_to_null() {
        let json = sample().to_chrome_json();
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let serde::Value::Object(fields) = &v else {
            panic!("expected object")
        };
        let events = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents");
        let serde::Value::Array(items) = events else {
            panic!("expected array")
        };
        assert_eq!(items.len(), 5); // 4 events + 1 counter total
        assert!(json.contains("\"value\":null"), "NaN must become null");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
    }

    #[test]
    fn canonical_lines_exclude_timing_and_tid() {
        let mut log = sample();
        let base = log.canonical_lines();
        for e in &mut log.events {
            e.ts_ns += 12_345;
            e.tid += 7;
        }
        log.wall_ns += 999;
        assert_eq!(log.canonical_lines(), base);
        assert!(base.iter().any(|l| l.starts_with("counter sweeps = 42")));
    }

    #[test]
    fn summary_aggregates_by_base_name_and_measures_coverage() {
        let s = sample().summary();
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.rows[0].name, "run");
        assert_eq!(s.rows[1].name, "fold");
        assert!((s.coverage() - 0.9).abs() < 1e-9);
        let rendered = s.render();
        assert!(rendered.contains("90.0% covered"));
        assert!(rendered.contains("sweeps"));
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_dur(12), "12ns");
        assert_eq!(fmt_dur(1_500), "1.5us");
        assert_eq!(fmt_dur(2_500_000), "2.50ms");
        assert_eq!(fmt_dur(3_210_000_000), "3.210s");
    }

    #[test]
    fn json_numbers_stay_floats() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
