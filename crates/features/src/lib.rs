//! The 20 user / question / user–question / social prediction
//! features of Hansen et al. (ICDCS 2019), Section II-B.
//!
//! For every user–question pair `(u, q)` the paper assembles a vector
//! `x_{u,q}` of dimension `18 + 2K` (two of the twenty logical
//! features are `K`-dimensional topic distributions):
//!
//! | Group | Features |
//! |---|---|
//! | user | (i) answers provided `a_u`, (ii) answer ratio `o_u`, (iii) net answer votes `v_u`, (iv) median response time `r_u`, (v) topics answered `d_u` |
//! | question | (vi) net question votes `v_q`, (vii) word length `x_q`, (viii) code length `c_q`, (ix) topics asked `d_q` |
//! | user–question | (x) topic similarity `s_{u,q}`, (xi) topic-weighted questions answered `g_{u,q}`, (xii) topic-weighted answer votes `e_{u,q}` |
//! | social | (xiii) user–user topic similarity `s_{u,v}`, (xiv) thread co-occurrence `h_{u,v}`, (xv/xviii) closeness `l_u`, (xvi/xix) betweenness `b_u`, (xvii/xx) resource allocation `Re_{u,v}` on `G_QA` and `G_D` |
//!
//! All aggregates are computed over a **history partition** `F(q)` of
//! threads (never the target question itself), which is what the
//! paper's historical-data experiments (Fig. 7) vary.
//!
//! Entry point: [`FeatureExtractor`]. Feature bookkeeping (indices,
//! names, groups, masking for the importance studies of Figs. 6–7)
//! lives in [`layout`]; z-score normalization in [`normalize`].
//!
//! # Example
//!
//! ```
//! use forumcast_features::{ExtractorConfig, FeatureExtractor};
//! use forumcast_synth::SynthConfig;
//!
//! let dataset = SynthConfig::small().generate();
//! let (clean, _) = dataset.preprocess();
//! let history = &clean.threads()[..100];
//! let extractor = FeatureExtractor::fit(history, clean.num_users(), &ExtractorConfig::fast());
//! let target = &clean.threads()[100];
//! let d_q = extractor.question_topics(target);
//! let x = extractor.features(target.answers[0].author, target, &d_q);
//! assert_eq!(x.len(), extractor.dim());
//! ```

pub mod context;
pub mod extractor;
pub mod layout;
pub mod normalize;
pub mod online;
pub mod topics;

pub use context::FeatureContext;
pub use extractor::{ExtractorConfig, FeatureExtractor};
// Re-exported so downstream crates (CLI flag plumbing) can select the
// Gibbs sampler without depending on `forumcast-topics` directly.
pub use forumcast_topics::{LdaConfig, LdaSampler};
pub use layout::{feature_dim, feature_names, FeatureGroup, FeatureId, FeatureLayout};
pub use normalize::Normalizer;
pub use online::OnlineFeatureExtractor;
pub use topics::PostTopics;
