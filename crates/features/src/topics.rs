//! Topic distributions `d(p)` for all posts of a history partition.

use std::collections::HashMap;

use forumcast_data::{PostBody, QuestionId, Thread, UserId};
use forumcast_text::{tokenize_filtered, BagOfWords, Corpus, Vocabulary};
use forumcast_topics::{LdaConfig, LdaModel};

/// An LDA model fitted on the posts of a history partition, plus the
/// inferred topic distribution of every post in it.
///
/// Mirrors the paper's pipeline: "each post `p` … is treated as a
/// separate document" (Section II-B), trained per partition `Ω` so
/// that no text from evaluation questions leaks into training.
#[derive(Debug, Clone)]
pub struct PostTopics {
    lda: LdaModel,
    vocab: Vocabulary,
    question_topics: HashMap<QuestionId, Vec<f64>>,
    answer_topics: HashMap<(QuestionId, UserId), Vec<f64>>,
}

impl PostTopics {
    /// Tokenizes every post in `history`, builds a pruned vocabulary,
    /// trains LDA with `config`, and records `d(p)` for each post.
    pub fn fit(history: &[Thread], config: &LdaConfig) -> Self {
        // One document per post, question first within each thread.
        let mut docs: Vec<Vec<String>> = Vec::new();
        let mut keys: Vec<PostKey> = Vec::new();
        for t in history {
            docs.push(tokenize_filtered(&t.question.body.text));
            keys.push(PostKey::Question(t.id));
            for a in &t.answers {
                docs.push(tokenize_filtered(&a.body.text));
                keys.push(PostKey::Answer(t.id, a.author));
            }
        }
        let mut vocab = Vocabulary::new();
        for d in &docs {
            vocab.observe(d);
        }
        vocab.prune(2, 0.6);
        let corpus = Corpus::from_token_docs(&docs, &vocab);
        let lda = LdaModel::train(&corpus, config);

        let mut question_topics = HashMap::new();
        let mut answer_topics = HashMap::new();
        for (i, key) in keys.into_iter().enumerate() {
            let theta = lda.doc_topics(i).to_vec();
            match key {
                PostKey::Question(q) => {
                    question_topics.insert(q, theta);
                }
                PostKey::Answer(q, u) => {
                    // A user's duplicate answers (rare, pre-cleaning)
                    // keep the last distribution; preprocessing
                    // removes duplicates anyway.
                    answer_topics.insert((q, u), theta);
                }
            }
        }
        PostTopics {
            lda,
            vocab,
            question_topics,
            answer_topics,
        }
    }

    /// Number of topics `K`.
    pub fn num_topics(&self) -> usize {
        self.lda.num_topics()
    }

    /// The underlying LDA model.
    pub fn model(&self) -> &LdaModel {
        &self.lda
    }

    /// Topic distribution of a history question.
    pub fn question(&self, q: QuestionId) -> Option<&[f64]> {
        self.question_topics.get(&q).map(Vec::as_slice)
    }

    /// Topic distribution of `u`'s answer to history question `q`.
    pub fn answer(&self, q: QuestionId, u: UserId) -> Option<&[f64]> {
        self.answer_topics.get(&(q, u)).map(Vec::as_slice)
    }

    /// Folds new threads into the distribution cache **without
    /// retraining** the topic–word distributions — the online
    /// deployment mode: `φ` stays frozen, new posts get fold-in `θ`s.
    pub fn extend(&mut self, threads: &[Thread]) {
        self.extend_with_threads(threads, forumcast_par::configured_threads());
    }

    /// [`PostTopics::extend`] with an explicit worker-thread count
    /// (`0` = auto). New posts are collected in thread order (first
    /// occurrence wins for duplicates, matching serial behavior),
    /// fold-in inference runs in parallel with per-post
    /// content-derived seeds, and results are inserted in collection
    /// order — bitwise-identical for any thread count.
    pub fn extend_with_threads(&mut self, threads: &[Thread], worker_threads: usize) {
        let mut keys: Vec<PostKey> = Vec::new();
        let mut docs: Vec<(BagOfWords, u64)> = Vec::new();
        let mut pending_q: std::collections::HashSet<QuestionId> = std::collections::HashSet::new();
        let mut pending_a: std::collections::HashSet<(QuestionId, UserId)> =
            std::collections::HashSet::new();
        for t in threads {
            if !self.question_topics.contains_key(&t.id) && pending_q.insert(t.id) {
                keys.push(PostKey::Question(t.id));
                docs.push(self.encode_with_seed(&t.question.body));
            }
            for a in &t.answers {
                let key = (t.id, a.author);
                if !self.answer_topics.contains_key(&key) && pending_a.insert(key) {
                    keys.push(PostKey::Answer(t.id, a.author));
                    docs.push(self.encode_with_seed(&a.body));
                }
            }
        }
        let thetas = self.lda.infer_batch(&docs, worker_threads);
        for (key, theta) in keys.into_iter().zip(thetas) {
            match key {
                PostKey::Question(q) => {
                    self.question_topics.insert(q, theta);
                }
                PostKey::Answer(q, u) => {
                    self.answer_topics.insert((q, u), theta);
                }
            }
        }
    }

    /// Encodes a post body and derives its deterministic fold-in seed
    /// from the token content.
    fn encode_with_seed(&self, body: &PostBody) -> (BagOfWords, u64) {
        let tokens = tokenize_filtered(&body.text);
        let bow = BagOfWords::encode(&tokens, &self.vocab);
        // Content-derived seed keeps inference deterministic without
        // threading an RNG through every feature computation.
        let seed = bow.iter().fold(0xBADC0FFEu64, |acc, (id, c)| {
            acc.wrapping_mul(31).wrapping_add(id as u64 * 7 + c as u64)
        });
        (bow, seed)
    }

    /// Infers `d(p)` for an arbitrary (held-out) post body via fold-in
    /// Gibbs with the trained topic–word distributions fixed.
    /// Deterministic: the seed is derived from the token content.
    pub fn infer(&self, body: &PostBody) -> Vec<f64> {
        let (bow, seed) = self.encode_with_seed(body);
        self.lda.infer(&bow, seed)
    }
}

#[derive(Debug, Clone, Copy)]
enum PostKey {
    Question(QuestionId),
    Answer(QuestionId, UserId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use forumcast_synth::SynthConfig;

    fn topics_over_small() -> (Vec<Thread>, PostTopics) {
        let ds = SynthConfig::small().with_seed(11).generate();
        let (clean, _) = ds.preprocess();
        let history: Vec<Thread> = clean.threads()[..120].to_vec();
        let pt = PostTopics::fit(&history, &LdaConfig::new(4).with_iterations(40));
        (history, pt)
    }

    #[test]
    fn every_history_post_has_a_distribution() {
        let (history, pt) = topics_over_small();
        for t in &history {
            let dq = pt.question(t.id).expect("question distribution");
            assert_eq!(dq.len(), 4);
            assert!((dq.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for a in &t.answers {
                assert!(pt.answer(t.id, a.author).is_some());
            }
        }
    }

    #[test]
    fn unknown_question_returns_none() {
        let (_, pt) = topics_over_small();
        assert!(pt.question(QuestionId(9_999_999)).is_none());
        assert!(pt.answer(QuestionId(9_999_999), UserId(0)).is_none());
    }

    #[test]
    fn inference_is_deterministic_per_content() {
        let (_, pt) = topics_over_small();
        let body = PostBody::words("t0w1 t0w2 t0w3 question error t0w4");
        assert_eq!(pt.infer(&body), pt.infer(&body));
    }

    #[test]
    fn inference_of_empty_body_is_uniform() {
        let (_, pt) = topics_over_small();
        let theta = pt.infer(&PostBody::default());
        assert_eq!(theta, vec![0.25; 4]);
    }

    #[test]
    fn extend_bitwise_identical_across_thread_counts() {
        let ds = SynthConfig::small().with_seed(11).generate();
        let (clean, _) = ds.preprocess();
        let history: Vec<Thread> = clean.threads()[..80].to_vec();
        let new_threads: Vec<Thread> = clean.threads()[80..120].to_vec();
        let base = PostTopics::fit(&history, &LdaConfig::new(4).with_iterations(20));

        let mut serial = base.clone();
        serial.extend_with_threads(&new_threads, 1);
        for threads in [2, 7] {
            let mut par = base.clone();
            par.extend_with_threads(&new_threads, threads);
            for t in &new_threads {
                let a = serial.question(t.id).unwrap();
                let b = par.question(t.id).unwrap();
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "question {:?}", t.id);
                }
                for ans in &t.answers {
                    let a = serial.answer(t.id, ans.author).unwrap();
                    let b = par.answer(t.id, ans.author).unwrap();
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn topical_posts_get_nonuniform_distributions() {
        let (_, pt) = topics_over_small();
        // A post hammering one synthetic topic's vocabulary.
        let text = (0..30)
            .map(|i| format!("t2w{}", i % 10))
            .collect::<Vec<_>>()
            .join(" ");
        let theta = pt.infer(&PostBody::words(text));
        let max = theta.iter().cloned().fold(0.0, f64::max);
        // The fitted LDA may split one synthetic theme across two of
        // its topics; "non-uniform" means clearly above the uniform
        // 1/K = 0.25 mass, not necessarily a single dominant topic.
        assert!(max > 0.4, "expected concentration, got {theta:?}");
    }
}
