//! Z-score normalization of feature vectors.

use serde::{Deserialize, Serialize};

/// Per-slot z-score normalizer fitted on a training set. Slots with
/// zero variance pass through unchanged (shifted to 0), so constant
/// features cannot produce NaNs.
///
/// # Example
///
/// ```
/// use forumcast_features::Normalizer;
/// let train = vec![vec![0.0, 10.0], vec![2.0, 10.0], vec![4.0, 10.0]];
/// let norm = Normalizer::fit(&train);
/// let z = norm.transform(&[2.0, 10.0]);
/// assert!(z[0].abs() < 1e-12); // mean maps to 0
/// assert_eq!(z[1], 0.0);       // constant slot maps to 0
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Normalizer {
    /// An identity normalizer (zero means, unit stds): `transform`
    /// returns its input unchanged. Useful where an API expects a
    /// normalizer but raw features are wanted.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0`.
    pub fn identity(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Normalizer {
            means: vec![0.0; dim],
            stds: vec![1.0; dim],
        }
    }

    /// Fits means and standard deviations on `rows`.
    ///
    /// # Panics
    ///
    /// Panics when `rows` is empty or row lengths differ.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a normalizer on no data");
        let dim = rows[0].len();
        let n = rows.len() as f64;
        let mut means = vec![0.0; dim];
        for r in rows {
            assert_eq!(r.len(), dim, "inconsistent row lengths");
            for (m, &v) in means.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for r in rows {
            for ((s, &v), &m) in stds.iter_mut().zip(r).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
        }
        Normalizer { means, stds }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Returns the z-scored copy of `x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != dim()`.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        x.iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((&v, &m), &s)| if s > 1e-12 { (v - m) / s } else { 0.0 })
            .collect()
    }

    /// Transforms a batch of rows.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformed_training_set_has_zero_mean_unit_std() {
        let rows = vec![vec![1.0, -3.0], vec![3.0, 0.0], vec![5.0, 3.0]];
        let norm = Normalizer::fit(&rows);
        let z = norm.transform_all(&rows);
        for d in 0..2 {
            let mean: f64 = z.iter().map(|r| r[d]).sum::<f64>() / 3.0;
            let var: f64 = z.iter().map(|r| r[d] * r[d]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_features_map_to_zero() {
        let rows = vec![vec![7.0], vec![7.0]];
        let norm = Normalizer::fit(&rows);
        assert_eq!(norm.transform(&[7.0]), vec![0.0]);
        assert_eq!(norm.transform(&[100.0]), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_panics() {
        Normalizer::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_transform_panics() {
        Normalizer::fit(&[vec![1.0]]).transform(&[1.0, 2.0]);
    }

    #[test]
    fn identity_passes_through() {
        let n = Normalizer::identity(3);
        assert_eq!(n.transform(&[5.0, -2.0, 0.0]), vec![5.0, -2.0, 0.0]);
        assert_eq!(n.dim(), 3);
    }

    #[test]
    fn serde_roundtrip() {
        let norm = Normalizer::fit(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let json = serde_json::to_string(&norm).unwrap();
        let back: Normalizer = serde_json::from_str(&json).unwrap();
        assert_eq!(back, norm);
    }
}
