//! Online (incremental) feature maintenance — the deployment mode the
//! paper sketches in its conclusion ("incorporating our recommendation
//! system into an online forum platform").
//!
//! At deployment time the topic model is **frozen** (new posts are
//! folded in, not retrained) while the behavioral aggregates and SLN
//! graphs grow with every new thread. Rebuilding centralities on every
//! ingested thread would be wasteful, so the context refreshes every
//! `refresh_every` threads (staleness is observable and a refresh can
//! be forced).

use forumcast_data::{Thread, UserId};

use crate::context::{BetweennessMode, FeatureContext};
use crate::extractor::ExtractorConfig;
use crate::layout::FeatureLayout;
use crate::topics::PostTopics;

/// An incrementally updatable feature pipeline.
///
/// # Example
///
/// ```
/// use forumcast_features::{ExtractorConfig, OnlineFeatureExtractor};
/// use forumcast_synth::SynthConfig;
///
/// let (ds, _) = SynthConfig::small().generate().preprocess();
/// let split = ds.num_questions() - 20;
/// let mut online = OnlineFeatureExtractor::fit(
///     &ds.threads()[..split],
///     ds.num_users(),
///     &ExtractorConfig::fast(),
///     10, // refresh centralities every 10 threads
/// );
/// for t in &ds.threads()[split..] {
///     online.ingest(t.clone());
/// }
/// assert!(online.staleness() < 10);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineFeatureExtractor {
    topics: PostTopics,
    history: Vec<Thread>,
    context: FeatureContext,
    layout: FeatureLayout,
    num_users: u32,
    betweenness: BetweennessMode,
    refresh_every: usize,
    pending: usize,
}

impl OnlineFeatureExtractor {
    /// Fits the initial pipeline on `history` (training the topic
    /// model once) and sets the refresh cadence.
    ///
    /// # Panics
    ///
    /// Panics when `refresh_every == 0`.
    pub fn fit(
        history: &[Thread],
        num_users: u32,
        config: &ExtractorConfig,
        refresh_every: usize,
    ) -> Self {
        assert!(refresh_every > 0, "refresh cadence must be positive");
        let topics = PostTopics::fit(history, &config.lda);
        let context = FeatureContext::build(history, num_users, &topics, config.betweenness);
        OnlineFeatureExtractor {
            layout: FeatureLayout::new(topics.num_topics()),
            topics,
            history: history.to_vec(),
            context,
            num_users,
            betweenness: config.betweenness,
            refresh_every,
            pending: 0,
        }
    }

    /// Ingests a newly completed thread. Topic distributions for its
    /// posts are folded in immediately (cheap); the behavioral /
    /// graph context refreshes once `refresh_every` threads have
    /// accumulated.
    pub fn ingest(&mut self, thread: Thread) {
        self.topics.extend(std::slice::from_ref(&thread));
        self.history.push(thread);
        self.pending += 1;
        if self.pending >= self.refresh_every {
            self.force_refresh();
        }
    }

    /// Threads ingested since the last context rebuild.
    pub fn staleness(&self) -> usize {
        self.pending
    }

    /// Number of threads currently in the history.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Rebuilds the aggregate context over the full history now.
    pub fn force_refresh(&mut self) {
        self.context = FeatureContext::build(
            &self.history,
            self.num_users,
            &self.topics,
            self.betweenness,
        );
        self.pending = 0;
    }

    /// Feature dimension `18 + 2K`.
    pub fn dim(&self) -> usize {
        self.layout.dim()
    }

    /// The slot layout.
    pub fn layout(&self) -> FeatureLayout {
        self.layout
    }

    /// The (frozen-vocabulary) topic model.
    pub fn topics(&self) -> &PostTopics {
        &self.topics
    }

    /// The current aggregate context (as of the last refresh).
    pub fn context(&self) -> &FeatureContext {
        &self.context
    }

    /// Topic distribution of a target question (fold-in inference for
    /// questions outside the ingested history).
    pub fn question_topics(&self, question: &Thread) -> Vec<f64> {
        match self.topics.question(question.id) {
            Some(d) => d.to_vec(),
            None => self.topics.infer(&question.question.body),
        }
    }

    /// Computes `x_{u,q}` against the current context. Mirrors
    /// [`crate::FeatureExtractor::features`].
    ///
    /// # Panics
    ///
    /// Panics when `d_q.len() != K` or `u` is out of range.
    pub fn features(&self, u: UserId, question: &Thread, d_q: &[f64]) -> Vec<f64> {
        crate::extractor::assemble_features(&self.context, self.layout, u, question, d_q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forumcast_synth::SynthConfig;

    fn fixture() -> (Vec<Thread>, Vec<Thread>) {
        let (ds, _) = SynthConfig::small().with_seed(31).generate().preprocess();
        let threads = ds.threads().to_vec();
        let split = threads.len() - 30;
        (threads[..split].to_vec(), threads[split..].to_vec())
    }

    fn config() -> ExtractorConfig {
        ExtractorConfig::fast()
    }

    #[test]
    fn ingest_refreshes_on_cadence() {
        let (history, new) = fixture();
        let (ds_users, cfg) = (200, config());
        let mut online = OnlineFeatureExtractor::fit(&history, ds_users, &cfg, 5);
        for (i, t) in new.iter().take(7).cloned().enumerate() {
            online.ingest(t);
            assert_eq!(online.staleness(), (i + 1) % 5);
        }
        assert_eq!(online.history_len(), history.len() + 7);
    }

    #[test]
    fn refreshed_context_matches_batch_rebuild() {
        let (history, new) = fixture();
        let cfg = config();
        let mut online = OnlineFeatureExtractor::fit(&history, 200, &cfg, 1000);
        for t in new.iter().cloned() {
            online.ingest(t);
        }
        online.force_refresh();

        // Batch equivalent: same frozen topic model, extended the
        // same way, context built over the full history.
        let mut topics = PostTopics::fit(&history, &cfg.lda);
        topics.extend(&new);
        let full: Vec<Thread> = history.iter().chain(&new).cloned().collect();
        let batch = FeatureContext::build(&full, 200, &topics, cfg.betweenness);

        let target = new.last().expect("has new threads");
        let d_q = online.question_topics(target);
        let layout = online.layout();
        for u in (0..200).map(UserId) {
            let a = online.features(u, target, &d_q);
            let b = crate::extractor::assemble_features(&batch, layout, u, target, &d_q);
            assert_eq!(a, b, "online vs batch mismatch for {u}");
        }
    }

    #[test]
    fn ingested_threads_update_user_aggregates() {
        let (history, new) = fixture();
        let mut online = OnlineFeatureExtractor::fit(&history, 200, &config(), 1);
        let answered: Vec<(UserId, f64)> = new
            .iter()
            .flat_map(|t| t.answers.iter().map(|a| (a.author, 1.0)))
            .collect();
        let before: f64 = answered
            .iter()
            .map(|(u, _)| online.context().answers_provided(*u))
            .sum();
        for t in new.iter().cloned() {
            online.ingest(t);
        }
        let after: f64 = answered
            .iter()
            .map(|(u, _)| online.context().answers_provided(*u))
            .sum();
        assert!(
            after >= before + answered.len() as f64 - 1e-9,
            "aggregates should grow: {before} -> {after}"
        );
    }

    #[test]
    fn stale_context_is_observable() {
        let (history, new) = fixture();
        let mut online = OnlineFeatureExtractor::fit(&history, 200, &config(), 100);
        let edges_before = online.context().qa_graph().num_edges();
        online.ingest(new[0].clone());
        // Not refreshed yet: the graph is stale by design.
        assert_eq!(online.context().qa_graph().num_edges(), edges_before);
        assert_eq!(online.staleness(), 1);
        online.force_refresh();
        assert_eq!(online.staleness(), 0);
        assert!(online.context().qa_graph().num_edges() >= edges_before);
    }

    #[test]
    #[should_panic(expected = "cadence")]
    fn zero_cadence_rejected() {
        let (history, _) = fixture();
        OnlineFeatureExtractor::fit(&history, 200, &config(), 0);
    }
}
