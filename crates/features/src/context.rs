//! Per-user and per-pair aggregates over a history partition `F(q)`.

use std::collections::HashMap;

use forumcast_data::{Thread, UserId};
use forumcast_graph::{
    betweenness, betweenness_sampled, closeness, dense_graph, qa_graph, resource_allocation, Graph,
};
use forumcast_topics::mean_distribution;

use crate::topics::PostTopics;

/// How betweenness centrality is computed for the SLN graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BetweennessMode {
    /// Exact Brandes — O(V·E), fine up to a few thousand users.
    Exact,
    /// Pivot-sampled Brandes with the given pivot count and seed —
    /// needed at the paper's 14K-user scale.
    Sampled {
        /// Number of BFS pivots.
        pivots: usize,
        /// RNG seed for pivot selection.
        seed: u64,
    },
}

/// Everything the 20 features need, precomputed once per history
/// partition: user aggregates (features i–v), SLN graphs and
/// centralities (xv–xx), thread co-occurrence (xiv), and the per-user
/// answer history with topic distributions (xi, xii).
#[derive(Debug, Clone)]
pub struct FeatureContext {
    num_users: u32,
    num_topics: usize,
    // --- user features ---
    answers_provided: Vec<f64>,
    questions_asked: Vec<f64>,
    net_answer_votes: Vec<f64>,
    median_response_time: Vec<f64>,
    user_topics: Vec<Vec<f64>>,
    /// Topics *discussed* (asked + answered) — used by feature (xiii),
    /// whose definition covers all of a user's discussion activity.
    discussed_topics: Vec<Vec<f64>>,
    // --- social ---
    qa: Graph,
    dense: Graph,
    closeness_qa: Vec<f64>,
    betweenness_qa: Vec<f64>,
    closeness_dense: Vec<f64>,
    betweenness_dense: Vec<f64>,
    cooccurrence: HashMap<(u32, u32), f64>,
    // --- per-user answer history: (history question idx, votes) ---
    answered_by_user: Vec<Vec<(usize, i32)>>,
    /// Topic distribution of each history question, indexed as in the
    /// `history` slice passed to [`FeatureContext::build`].
    hist_question_topics: Vec<Vec<f64>>,
}

impl FeatureContext {
    /// Builds the context over `history` threads, using `topics` for
    /// post topic distributions.
    ///
    /// # Panics
    ///
    /// Panics when a post references a user `>= num_users`.
    pub fn build(
        history: &[Thread],
        num_users: u32,
        topics: &PostTopics,
        betweenness_mode: BetweennessMode,
    ) -> Self {
        let n = num_users as usize;
        let k = topics.num_topics();
        let mut answers_provided = vec![0.0; n];
        let mut questions_asked = vec![0.0; n];
        let mut net_answer_votes = vec![0.0; n];
        let mut response_times: Vec<Vec<f64>> = vec![Vec::new(); n];
        let mut user_topic_lists: Vec<Vec<Vec<f64>>> = vec![Vec::new(); n];
        let mut discussed_lists: Vec<Vec<Vec<f64>>> = vec![Vec::new(); n];
        let mut cooccurrence: HashMap<(u32, u32), f64> = HashMap::new();
        let mut answered_by_user: Vec<Vec<(usize, i32)>> = vec![Vec::new(); n];
        let mut hist_question_topics = Vec::with_capacity(history.len());

        for (qi, t) in history.iter().enumerate() {
            let asker = t.asker().index();
            assert!(asker < n, "asker out of range");
            questions_asked[asker] += 1.0;
            let d_q = topics
                .question(t.id)
                .map(<[f64]>::to_vec)
                .unwrap_or_else(|| vec![1.0 / k as f64; k]);
            discussed_lists[asker].push(d_q.clone());
            hist_question_topics.push(d_q);

            // Per-user dedup within the thread (multi-answers are rare
            // and removed by preprocessing, but stay robust).
            let mut seen: Vec<UserId> = Vec::new();
            for a in &t.answers {
                let u = a.author.index();
                assert!(u < n, "answerer out of range");
                answers_provided[u] += 1.0;
                net_answer_votes[u] += a.votes as f64;
                response_times[u].push(a.timestamp - t.asked_at());
                let d_a = topics
                    .answer(t.id, a.author)
                    .map(<[f64]>::to_vec)
                    .unwrap_or_else(|| vec![1.0 / k as f64; k]);
                discussed_lists[u].push(d_a.clone());
                user_topic_lists[u].push(d_a);
                if !seen.contains(&a.author) {
                    seen.push(a.author);
                    answered_by_user[u].push((qi, a.votes));
                }
            }
            // Thread co-occurrence h_{u,v} over all participants.
            let participants = t.participants();
            for (i, &u) in participants.iter().enumerate() {
                for &v in &participants[i + 1..] {
                    *cooccurrence.entry(pair(u.0, v.0)).or_insert(0.0) += 1.0;
                }
            }
        }

        let median_response_time = response_times
            .iter()
            .map(|v| forumcast_ml_median(v))
            .collect();
        let user_topics = user_topic_lists
            .iter()
            .map(|lists| mean_distribution(lists, k))
            .collect();
        let discussed_topics = discussed_lists
            .iter()
            .map(|lists| mean_distribution(lists, k))
            .collect();

        let qa = qa_graph(num_users, history);
        let dense = dense_graph(num_users, history);
        let (betweenness_qa, betweenness_dense) = match betweenness_mode {
            BetweennessMode::Exact => (betweenness(&qa), betweenness(&dense)),
            BetweennessMode::Sampled { pivots, seed } => (
                betweenness_sampled(&qa, pivots, seed),
                betweenness_sampled(&dense, pivots, seed ^ 0x9E3779B9),
            ),
        };
        FeatureContext {
            num_users,
            num_topics: k,
            answers_provided,
            questions_asked,
            net_answer_votes,
            median_response_time,
            user_topics,
            discussed_topics,
            closeness_qa: closeness(&qa),
            closeness_dense: closeness(&dense),
            betweenness_qa,
            betweenness_dense,
            qa,
            dense,
            cooccurrence,
            answered_by_user,
            hist_question_topics,
        }
    }

    /// Number of users.
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Number of topics `K`.
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// (i) `a_u`.
    pub fn answers_provided(&self, u: UserId) -> f64 {
        self.answers_provided[u.index()]
    }

    /// (ii) `o_u = a_u / (1 + questions asked)`.
    pub fn answer_ratio(&self, u: UserId) -> f64 {
        self.answers_provided[u.index()] / (1.0 + self.questions_asked[u.index()])
    }

    /// (iii) `v_u`.
    pub fn net_answer_votes(&self, u: UserId) -> f64 {
        self.net_answer_votes[u.index()]
    }

    /// (iv) `r_u` (0 when the user never answered).
    pub fn median_response_time(&self, u: UserId) -> f64 {
        self.median_response_time[u.index()]
    }

    /// (v) `d_u` (uniform when the user never answered).
    pub fn user_topics(&self, u: UserId) -> &[f64] {
        &self.user_topics[u.index()]
    }

    /// Topics discussed by `u` across questions *and* answers —
    /// the distribution feature (xiii) compares between answerer and
    /// asker (uniform when the user never posted).
    pub fn discussed_topics(&self, u: UserId) -> &[f64] {
        &self.discussed_topics[u.index()]
    }

    /// (xiv) `h_{u,v}` — threads both users participated in.
    pub fn cooccurrence(&self, u: UserId, v: UserId) -> f64 {
        *self.cooccurrence.get(&pair(u.0, v.0)).unwrap_or(&0.0)
    }

    /// (xv) `l^QA_u`.
    pub fn closeness_qa(&self, u: UserId) -> f64 {
        self.closeness_qa[u.index()]
    }

    /// (xvi) `b^QA_u`.
    pub fn betweenness_qa(&self, u: UserId) -> f64 {
        self.betweenness_qa[u.index()]
    }

    /// (xvii) `Re^QA_{u,v}`.
    pub fn resource_allocation_qa(&self, u: UserId, v: UserId) -> f64 {
        resource_allocation(&self.qa, u.0, v.0)
    }

    /// (xviii) `l^D_u`.
    pub fn closeness_dense(&self, u: UserId) -> f64 {
        self.closeness_dense[u.index()]
    }

    /// (xix) `b^D_u`.
    pub fn betweenness_dense(&self, u: UserId) -> f64 {
        self.betweenness_dense[u.index()]
    }

    /// (xx) `Re^D_{u,v}`.
    pub fn resource_allocation_dense(&self, u: UserId, v: UserId) -> f64 {
        resource_allocation(&self.dense, u.0, v.0)
    }

    /// The question–answer graph `G_QA`.
    pub fn qa_graph(&self) -> &Graph {
        &self.qa
    }

    /// The denser graph `G_D`.
    pub fn dense_graph(&self) -> &Graph {
        &self.dense
    }

    /// (xi)/(xii): iterates over `u`'s answered history questions as
    /// `(topic distribution, votes received)` pairs.
    pub fn answer_history(&self, u: UserId) -> impl Iterator<Item = (&[f64], i32)> {
        self.answered_by_user[u.index()]
            .iter()
            .map(|&(qi, votes)| (self.hist_question_topics[qi].as_slice(), votes))
    }
}

/// Canonical unordered pair key.
fn pair(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Median without pulling the ml crate into the dependency graph.
fn forumcast_ml_median(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mut s = v.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forumcast_data::{Post, PostBody, Thread};
    use forumcast_topics::LdaConfig;

    fn post(u: u32, t: f64, v: i32, text: &str) -> Post {
        Post::new(UserId(u), t, v, PostBody::words(text))
    }

    /// u0 asks q0 (answered by u1 at +2h with 3 votes, u2 at +4h, 1v);
    /// u1 asks q1 (answered by u2 at +1h, 5v). u3 inactive.
    fn tiny_history() -> Vec<Thread> {
        vec![
            Thread::new(
                0,
                post(0, 0.0, 2, "alpha alpha beta"),
                vec![
                    post(1, 2.0, 3, "alpha beta beta"),
                    post(2, 4.0, 1, "gamma gamma"),
                ],
            ),
            Thread::new(
                1,
                post(1, 10.0, 0, "gamma gamma delta"),
                vec![post(2, 11.0, 5, "delta delta")],
            ),
        ]
    }

    fn ctx() -> FeatureContext {
        let history = tiny_history();
        let topics = PostTopics::fit(&history, &LdaConfig::new(2).with_iterations(20));
        FeatureContext::build(&history, 4, &topics, BetweennessMode::Exact)
    }

    #[test]
    fn user_aggregates_match_hand_counts() {
        let c = ctx();
        assert_eq!(c.answers_provided(UserId(2)), 2.0);
        assert_eq!(c.answers_provided(UserId(1)), 1.0);
        assert_eq!(c.answers_provided(UserId(3)), 0.0);
        assert_eq!(c.net_answer_votes(UserId(2)), 6.0);
        // u1: 1 answer, 1 question asked → o = 1/(1+1).
        assert_eq!(c.answer_ratio(UserId(1)), 0.5);
        // u2: 2 answers, 0 questions → o = 2.
        assert_eq!(c.answer_ratio(UserId(2)), 2.0);
        // u2 response times: 4h and 1h → median 2.5.
        assert_eq!(c.median_response_time(UserId(2)), 2.5);
        assert_eq!(c.median_response_time(UserId(3)), 0.0);
    }

    #[test]
    fn cooccurrence_counts_threads() {
        let c = ctx();
        // u1 and u2 share both threads.
        assert_eq!(c.cooccurrence(UserId(1), UserId(2)), 2.0);
        assert_eq!(c.cooccurrence(UserId(2), UserId(1)), 2.0);
        assert_eq!(c.cooccurrence(UserId(0), UserId(2)), 1.0);
        assert_eq!(c.cooccurrence(UserId(0), UserId(3)), 0.0);
    }

    #[test]
    fn graphs_have_expected_edges() {
        let c = ctx();
        // G_QA: 0-1, 0-2 (q0), 1-2 (q1).
        assert_eq!(c.qa_graph().num_edges(), 3);
        // G_D adds answerer-answerer 1-2 (already in QA via q1).
        assert_eq!(c.dense_graph().num_edges(), 3);
        assert!(c.closeness_qa(UserId(1)) > 0.0);
        assert_eq!(c.closeness_qa(UserId(3)), 0.0);
        assert_eq!(c.betweenness_qa(UserId(3)), 0.0);
    }

    #[test]
    fn resource_allocation_consistent_with_graph() {
        let c = ctx();
        // In the triangle 0-1-2 every pair shares exactly one common
        // neighbor of degree 2.
        assert!((c.resource_allocation_qa(UserId(0), UserId(1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn answer_history_exposes_votes_and_topics() {
        let c = ctx();
        let hist: Vec<(Vec<f64>, i32)> = c
            .answer_history(UserId(2))
            .map(|(d, v)| (d.to_vec(), v))
            .collect();
        assert_eq!(hist.len(), 2);
        let votes: Vec<i32> = hist.iter().map(|(_, v)| *v).collect();
        assert!(votes.contains(&1) && votes.contains(&5));
        for (d, _) in &hist {
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn inactive_user_gets_uniform_topics() {
        let c = ctx();
        assert_eq!(c.user_topics(UserId(3)), &[0.5, 0.5]);
    }

    #[test]
    fn sampled_betweenness_mode_runs() {
        let history = tiny_history();
        let topics = PostTopics::fit(&history, &LdaConfig::new(2).with_iterations(10));
        let c = FeatureContext::build(
            &history,
            4,
            &topics,
            BetweennessMode::Sampled { pivots: 2, seed: 1 },
        );
        // Sampled values are approximate but finite.
        assert!(c.betweenness_qa(UserId(1)).is_finite());
    }

    #[test]
    fn empty_history_context() {
        let topics = PostTopics::fit(&[], &LdaConfig::new(2).with_iterations(5));
        let c = FeatureContext::build(&[], 3, &topics, BetweennessMode::Exact);
        assert_eq!(c.answers_provided(UserId(0)), 0.0);
        assert_eq!(c.cooccurrence(UserId(0), UserId(1)), 0.0);
        assert_eq!(c.qa_graph().num_edges(), 0);
    }
}
