//! Assembling the full `18 + 2K` feature vector for a `(u, q)` pair.

use forumcast_data::{Thread, UserId};
use forumcast_topics::{tv_similarity, LdaConfig};

use crate::context::{BetweennessMode, FeatureContext};
use crate::layout::FeatureLayout;
use crate::topics::PostTopics;

/// Configuration for [`FeatureExtractor::fit`].
#[derive(Debug, Clone)]
pub struct ExtractorConfig {
    /// LDA hyperparameters (the paper's default is `K = 8`).
    pub lda: LdaConfig,
    /// Betweenness computation mode.
    pub betweenness: BetweennessMode,
}

impl ExtractorConfig {
    /// Paper defaults: `K = 8`, exact betweenness.
    pub fn paper() -> Self {
        ExtractorConfig {
            lda: LdaConfig::new(8),
            betweenness: BetweennessMode::Exact,
        }
    }

    /// Faster settings for tests: `K = 4`, 40 Gibbs sweeps, sampled
    /// betweenness.
    pub fn fast() -> Self {
        ExtractorConfig {
            lda: LdaConfig::new(4).with_iterations(40),
            betweenness: BetweennessMode::Sampled {
                pivots: 128,
                seed: 7,
            },
        }
    }

    /// Sets the number of topics, preserving other LDA settings
    /// (iterations, seed, sampler); the priors re-derive from `k`.
    pub fn with_topics(mut self, k: usize) -> Self {
        let iters = self.lda.iterations;
        let seed = self.lda.seed;
        let sampler = self.lda.sampler;
        self.lda = LdaConfig::new(k)
            .with_iterations(iters)
            .with_seed(seed)
            .with_sampler(sampler);
        self
    }
}

impl Default for ExtractorConfig {
    fn default() -> Self {
        ExtractorConfig::paper()
    }
}

/// Computes feature vectors `x_{u,q}` against a fitted history
/// partition `F(q)`.
///
/// # Example
///
/// See the crate-level example in [`crate`].
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    topics: PostTopics,
    context: FeatureContext,
    layout: FeatureLayout,
}

impl FeatureExtractor {
    /// Fits topics and aggregates on the history partition.
    pub fn fit(history: &[Thread], num_users: u32, config: &ExtractorConfig) -> Self {
        let topics = PostTopics::fit(history, &config.lda);
        let context = FeatureContext::build(history, num_users, &topics, config.betweenness);
        let layout = FeatureLayout::new(topics.num_topics());
        FeatureExtractor {
            topics,
            context,
            layout,
        }
    }

    /// Vector dimension `18 + 2K`.
    pub fn dim(&self) -> usize {
        self.layout.dim()
    }

    /// The slot layout (for masking and naming).
    pub fn layout(&self) -> FeatureLayout {
        self.layout
    }

    /// The fitted topic model.
    pub fn topics(&self) -> &PostTopics {
        &self.topics
    }

    /// The fitted aggregates.
    pub fn context(&self) -> &FeatureContext {
        &self.context
    }

    /// Topic distribution `d_q` of a **target** question: looked up if
    /// the question is part of the history, otherwise inferred from
    /// its text.
    pub fn question_topics(&self, question: &Thread) -> Vec<f64> {
        match self.topics.question(question.id) {
            Some(d) => d.to_vec(),
            None => self.topics.infer(&question.question.body),
        }
    }

    /// Computes `x_{u,q}` for user `u` and target question `question`,
    /// with `d_q` as returned by
    /// [`question_topics`](FeatureExtractor::question_topics)
    /// (passed in so callers can compute it once per question).
    ///
    /// # Panics
    ///
    /// Panics when `d_q.len() != K` or `u` is out of range.
    pub fn features(&self, u: UserId, question: &Thread, d_q: &[f64]) -> Vec<f64> {
        assemble_features(&self.context, self.layout, u, question, d_q)
    }
}

/// Assembles the `18 + 2K` vector from a prepared context — shared by
/// [`FeatureExtractor`] and the online pipeline.
///
/// # Panics
///
/// Panics when `d_q.len()` differs from the context's topic count or
/// `u` is out of range.
pub(crate) fn assemble_features(
    ctx: &FeatureContext,
    layout: FeatureLayout,
    u: UserId,
    question: &Thread,
    d_q: &[f64],
) -> Vec<f64> {
    assert_eq!(d_q.len(), ctx.num_topics(), "d_q must have K entries");
    let asker = question.asker();
    let d_u = ctx.user_topics(u);

    let mut x = Vec::with_capacity(layout.dim());
    // --- user features (i)–(v) ---
    x.push(ctx.answers_provided(u));
    x.push(ctx.answer_ratio(u));
    x.push(ctx.net_answer_votes(u));
    x.push(ctx.median_response_time(u));
    x.extend_from_slice(d_u);
    // --- question features (vi)–(ix) ---
    x.push(question.question.votes as f64);
    x.push(question.question.body.word_len() as f64);
    x.push(question.question.body.code_len() as f64);
    x.extend_from_slice(d_q);
    // --- user–question features (x)–(xii) ---
    x.push(tv_similarity(d_u, d_q));
    let mut g_uq = 0.0;
    let mut e_uq = 0.0;
    for (d_r, votes) in ctx.answer_history(u) {
        let s = tv_similarity(d_q, d_r);
        g_uq += s;
        e_uq += votes as f64 * s;
    }
    x.push(g_uq);
    x.push(e_uq);
    // --- social features (xiii)–(xx) ---
    // (xiii) compares topics *discussed* (asked + answered) by both
    // users, per the paper's definition.
    x.push(tv_similarity(
        ctx.discussed_topics(u),
        ctx.discussed_topics(asker),
    ));
    x.push(ctx.cooccurrence(u, asker));
    x.push(ctx.closeness_qa(u));
    x.push(ctx.betweenness_qa(u));
    x.push(ctx.resource_allocation_qa(u, asker));
    x.push(ctx.closeness_dense(u));
    x.push(ctx.betweenness_dense(u));
    x.push(ctx.resource_allocation_dense(u, asker));

    debug_assert_eq!(x.len(), layout.dim());
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::FeatureId;
    use forumcast_synth::SynthConfig;

    fn fixture() -> (Vec<Thread>, Thread, FeatureExtractor) {
        let ds = SynthConfig::small().with_seed(5).generate();
        let (clean, _) = ds.preprocess();
        let threads = clean.threads().to_vec();
        let history = threads[..100].to_vec();
        let target = threads[100].clone();
        let ex = FeatureExtractor::fit(&history, clean.num_users(), &ExtractorConfig::fast());
        (history, target, ex)
    }

    #[test]
    fn vector_has_layout_dimension_and_is_finite() {
        let (_, target, ex) = fixture();
        let d_q = ex.question_topics(&target);
        let u = target.answers[0].author;
        let x = ex.features(u, &target, &d_q);
        assert_eq!(x.len(), ex.dim());
        assert_eq!(ex.dim(), 18 + 2 * 4);
        assert!(x.iter().all(|v| v.is_finite()), "{x:?}");
    }

    #[test]
    fn similarity_slots_are_in_unit_interval() {
        let (_, target, ex) = fixture();
        let d_q = ex.question_topics(&target);
        let u = target.answers[0].author;
        let x = ex.features(u, &target, &d_q);
        let layout = ex.layout();
        for id in [
            FeatureId::UserQuestionTopicSimilarity,
            FeatureId::UserUserTopicSimilarity,
        ] {
            let i = layout.range(id).start;
            assert!((0.0..=1.0).contains(&x[i]), "{id:?} = {}", x[i]);
        }
    }

    #[test]
    fn question_slots_match_the_thread() {
        let (_, target, ex) = fixture();
        let d_q = ex.question_topics(&target);
        let x = ex.features(UserId(0), &target, &d_q);
        let layout = ex.layout();
        assert_eq!(
            x[layout.range(FeatureId::NetQuestionVotes).start],
            target.question.votes as f64
        );
        assert_eq!(
            x[layout.range(FeatureId::QuestionWordLength).start],
            target.question.body.word_len() as f64
        );
        assert_eq!(
            x[layout.range(FeatureId::QuestionCodeLength).start],
            target.question.body.code_len() as f64
        );
    }

    #[test]
    fn history_question_uses_trained_distribution() {
        let (history, _, ex) = fixture();
        let d = ex.question_topics(&history[3]);
        assert_eq!(
            d,
            ex.topics().question(history[3].id).unwrap().to_vec(),
            "in-history questions should use the trained θ"
        );
    }

    #[test]
    fn inactive_user_features_are_mostly_zero() {
        let (_, target, ex) = fixture();
        let d_q = ex.question_topics(&target);
        // Find a user with no history activity.
        let ctx = ex.context();
        let idle = (0..ctx.num_users())
            .map(UserId)
            .find(|&u| {
                ctx.answers_provided(u) == 0.0
                    && ctx.cooccurrence(u, target.asker()) == 0.0
                    && ctx.closeness_qa(u) == 0.0
            })
            .expect("some idle user exists");
        let x = ex.features(idle, &target, &d_q);
        let layout = ex.layout();
        assert_eq!(x[layout.range(FeatureId::AnswersProvided).start], 0.0);
        assert_eq!(
            x[layout.range(FeatureId::TopicWeightedAnswerVotes).start],
            0.0
        );
        assert_eq!(x[layout.range(FeatureId::QaBetweenness).start], 0.0);
    }

    #[test]
    fn g_uq_counts_topic_weighted_history() {
        let (_, target, ex) = fixture();
        let d_q = ex.question_topics(&target);
        let layout = ex.layout();
        // g_uq must be <= number of questions the user answered
        // (similarities are <= 1) and >= 0.
        let ctx = ex.context();
        for u in (0..ctx.num_users()).map(UserId) {
            let x = ex.features(u, &target, &d_q);
            let g = x[layout
                .range(FeatureId::TopicWeightedQuestionsAnswered)
                .start];
            assert!(g >= 0.0);
            assert!(g <= ctx.answers_provided(u) + 1e-9, "g {g} for {u}");
        }
    }

    #[test]
    #[should_panic(expected = "K entries")]
    fn wrong_dq_length_panics() {
        let (_, target, ex) = fixture();
        ex.features(UserId(0), &target, &[0.5, 0.5]);
    }
}
