//! Bookkeeping for the 20 logical features: indices, names, groups,
//! and masking (used by the Figure 6 / Figure 7 importance studies).

use serde::{Deserialize, Serialize};

/// The four feature groups of Section II-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureGroup {
    /// Features (i)–(v): the user's answering behavior.
    User,
    /// Features (vi)–(ix): attributes of the question.
    Question,
    /// Features (x)–(xii): user–question relationships.
    UserQuestion,
    /// Features (xiii)–(xx): SLN-topology and similarity features.
    Social,
}

impl FeatureGroup {
    /// All four groups in paper order.
    pub const ALL: [FeatureGroup; 4] = [
        FeatureGroup::User,
        FeatureGroup::Question,
        FeatureGroup::UserQuestion,
        FeatureGroup::Social,
    ];
}

impl std::fmt::Display for FeatureGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FeatureGroup::User => "user",
            FeatureGroup::Question => "question",
            FeatureGroup::UserQuestion => "user-question",
            FeatureGroup::Social => "social",
        };
        f.write_str(s)
    }
}

/// The 20 logical features, in the paper's (i)–(xx) order. Two of
/// them (`TopicsAnswered`, `TopicsAsked`) occupy `K` vector slots
/// each; the rest are scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureId {
    /// (i) `a_u` — answers provided by the user.
    AnswersProvided,
    /// (ii) `o_u` — smoothed answers-to-questions ratio.
    AnswerRatio,
    /// (iii) `v_u` — net votes on the user's answers.
    NetAnswerVotes,
    /// (iv) `r_u` — median response time of the user.
    MedianResponseTime,
    /// (v) `d_u` — mean topic distribution answered (K slots).
    TopicsAnswered,
    /// (vi) `v_q` — net votes on the question.
    NetQuestionVotes,
    /// (vii) `x_q` — word length of the question in characters.
    QuestionWordLength,
    /// (viii) `c_q` — code length of the question in characters.
    QuestionCodeLength,
    /// (ix) `d_q` — topic distribution of the question (K slots).
    TopicsAsked,
    /// (x) `s_{u,q}` — user–question topic similarity.
    UserQuestionTopicSimilarity,
    /// (xi) `g_{u,q}` — topic-weighted questions answered.
    TopicWeightedQuestionsAnswered,
    /// (xii) `e_{u,q}` — topic-weighted answer votes.
    TopicWeightedAnswerVotes,
    /// (xiii) `s_{u,v}` — topic similarity between user and asker.
    UserUserTopicSimilarity,
    /// (xiv) `h_{u,v}` — thread co-occurrence count with the asker.
    ThreadCoOccurrence,
    /// (xv) `l^QA_u` — closeness centrality on `G_QA`.
    QaCloseness,
    /// (xvi) `b^QA_u` — betweenness centrality on `G_QA`.
    QaBetweenness,
    /// (xvii) `Re^QA_{u,v}` — resource allocation index on `G_QA`.
    QaResourceAllocation,
    /// (xviii) `l^D_u` — closeness centrality on `G_D`.
    DenseCloseness,
    /// (xix) `b^D_u` — betweenness centrality on `G_D`.
    DenseBetweenness,
    /// (xx) `Re^D_{u,v}` — resource allocation index on `G_D`.
    DenseResourceAllocation,
}

impl FeatureId {
    /// All 20 features in paper order.
    pub const ALL: [FeatureId; 20] = [
        FeatureId::AnswersProvided,
        FeatureId::AnswerRatio,
        FeatureId::NetAnswerVotes,
        FeatureId::MedianResponseTime,
        FeatureId::TopicsAnswered,
        FeatureId::NetQuestionVotes,
        FeatureId::QuestionWordLength,
        FeatureId::QuestionCodeLength,
        FeatureId::TopicsAsked,
        FeatureId::UserQuestionTopicSimilarity,
        FeatureId::TopicWeightedQuestionsAnswered,
        FeatureId::TopicWeightedAnswerVotes,
        FeatureId::UserUserTopicSimilarity,
        FeatureId::ThreadCoOccurrence,
        FeatureId::QaCloseness,
        FeatureId::QaBetweenness,
        FeatureId::QaResourceAllocation,
        FeatureId::DenseCloseness,
        FeatureId::DenseBetweenness,
        FeatureId::DenseResourceAllocation,
    ];

    /// The group this feature belongs to.
    pub fn group(self) -> FeatureGroup {
        use FeatureId::*;
        match self {
            AnswersProvided | AnswerRatio | NetAnswerVotes | MedianResponseTime
            | TopicsAnswered => FeatureGroup::User,
            NetQuestionVotes | QuestionWordLength | QuestionCodeLength | TopicsAsked => {
                FeatureGroup::Question
            }
            UserQuestionTopicSimilarity
            | TopicWeightedQuestionsAnswered
            | TopicWeightedAnswerVotes => FeatureGroup::UserQuestion,
            _ => FeatureGroup::Social,
        }
    }

    /// The paper's symbol for this feature.
    pub fn symbol(self) -> &'static str {
        use FeatureId::*;
        match self {
            AnswersProvided => "a_u",
            AnswerRatio => "o_u",
            NetAnswerVotes => "v_u",
            MedianResponseTime => "r_u",
            TopicsAnswered => "d_u",
            NetQuestionVotes => "v_q",
            QuestionWordLength => "x_q",
            QuestionCodeLength => "c_q",
            TopicsAsked => "d_q",
            UserQuestionTopicSimilarity => "s_uq",
            TopicWeightedQuestionsAnswered => "g_uq",
            TopicWeightedAnswerVotes => "e_uq",
            UserUserTopicSimilarity => "s_uv",
            ThreadCoOccurrence => "h_uv",
            QaCloseness => "l_qa",
            QaBetweenness => "b_qa",
            QaResourceAllocation => "re_qa",
            DenseCloseness => "l_d",
            DenseBetweenness => "b_d",
            DenseResourceAllocation => "re_d",
        }
    }

    /// Number of vector slots this feature occupies given `k` topics.
    pub fn width(self, k: usize) -> usize {
        match self {
            FeatureId::TopicsAnswered | FeatureId::TopicsAsked => k,
            _ => 1,
        }
    }
}

/// Maps logical features to slot ranges in the `18 + 2K` vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureLayout {
    /// Number of topics `K`.
    pub num_topics: usize,
}

impl FeatureLayout {
    /// Creates a layout for `num_topics` topics.
    ///
    /// # Panics
    ///
    /// Panics when `num_topics == 0`.
    pub fn new(num_topics: usize) -> Self {
        assert!(num_topics > 0, "need at least one topic");
        FeatureLayout { num_topics }
    }

    /// Total vector dimension `18 + 2K`.
    pub fn dim(&self) -> usize {
        feature_dim(self.num_topics)
    }

    /// Slot range `[start, start + width)` of a logical feature.
    pub fn range(&self, id: FeatureId) -> std::ops::Range<usize> {
        let mut start = 0;
        for f in FeatureId::ALL {
            let w = f.width(self.num_topics);
            if f == id {
                return start..start + w;
            }
            start += w;
        }
        unreachable!("FeatureId::ALL covers all variants")
    }

    /// Slot indices of a whole feature group.
    pub fn group_indices(&self, group: FeatureGroup) -> Vec<usize> {
        FeatureId::ALL
            .iter()
            .filter(|f| f.group() == group)
            .flat_map(|&f| self.range(f))
            .collect()
    }

    /// Zeroes the slots of the given logical feature in `x` —
    /// the leave-one-feature-out protocol of Figure 6.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != dim()`.
    pub fn mask_feature(&self, x: &mut [f64], id: FeatureId) {
        assert_eq!(x.len(), self.dim(), "vector/layout dimension mismatch");
        for i in self.range(id) {
            x[i] = 0.0;
        }
    }

    /// Zeroes the slots of a whole group — the group-exclusion
    /// protocol of Figure 7.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != dim()`.
    pub fn mask_group(&self, x: &mut [f64], group: FeatureGroup) {
        assert_eq!(x.len(), self.dim(), "vector/layout dimension mismatch");
        for i in self.group_indices(group) {
            x[i] = 0.0;
        }
    }
}

/// Vector dimension for `k` topics: `18 + 2k`.
pub fn feature_dim(k: usize) -> usize {
    18 + 2 * k
}

/// Human-readable name per vector slot (topic distributions expand to
/// `d_u[0]`, `d_u[1]`, …).
pub fn feature_names(k: usize) -> Vec<String> {
    let mut names = Vec::with_capacity(feature_dim(k));
    for f in FeatureId::ALL {
        let w = f.width(k);
        if w == 1 {
            names.push(f.symbol().to_string());
        } else {
            for i in 0..w {
                names.push(format!("{}[{}]", f.symbol(), i));
            }
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_matches_paper_formula() {
        assert_eq!(feature_dim(8), 34);
        assert_eq!(feature_dim(1), 20);
        assert_eq!(feature_names(8).len(), 34);
    }

    #[test]
    fn ranges_partition_the_vector() {
        let layout = FeatureLayout::new(8);
        let mut covered = vec![false; layout.dim()];
        for f in FeatureId::ALL {
            for i in layout.range(f) {
                assert!(!covered[i], "slot {i} double-covered");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn groups_have_paper_sizes() {
        let layout = FeatureLayout::new(8);
        assert_eq!(layout.group_indices(FeatureGroup::User).len(), 4 + 8);
        assert_eq!(layout.group_indices(FeatureGroup::Question).len(), 3 + 8);
        assert_eq!(layout.group_indices(FeatureGroup::UserQuestion).len(), 3);
        assert_eq!(layout.group_indices(FeatureGroup::Social).len(), 8);
    }

    #[test]
    fn twenty_logical_features() {
        assert_eq!(FeatureId::ALL.len(), 20);
        let user: Vec<_> = FeatureId::ALL
            .iter()
            .filter(|f| f.group() == FeatureGroup::User)
            .collect();
        assert_eq!(user.len(), 5);
    }

    #[test]
    fn mask_feature_zeroes_exact_range() {
        let layout = FeatureLayout::new(2);
        let mut x: Vec<f64> = (0..layout.dim()).map(|i| i as f64 + 1.0).collect();
        layout.mask_feature(&mut x, FeatureId::TopicsAnswered);
        let r = layout.range(FeatureId::TopicsAnswered);
        for (i, &v) in x.iter().enumerate() {
            if r.contains(&i) {
                assert_eq!(v, 0.0);
            } else {
                assert_ne!(v, 0.0);
            }
        }
    }

    #[test]
    fn mask_group_zeroes_whole_group() {
        let layout = FeatureLayout::new(2);
        let mut x = vec![1.0; layout.dim()];
        layout.mask_group(&mut x, FeatureGroup::Social);
        let zeroed = x.iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeroed, 8);
    }

    #[test]
    fn symbols_are_unique() {
        let mut syms: Vec<_> = FeatureId::ALL.iter().map(|f| f.symbol()).collect();
        syms.sort_unstable();
        syms.dedup();
        assert_eq!(syms.len(), 20);
    }

    #[test]
    fn group_display_names() {
        assert_eq!(FeatureGroup::UserQuestion.to_string(), "user-question");
        assert_eq!(FeatureGroup::ALL.len(), 4);
    }
}
