//! Quick-scale training throughput probe used by the check.sh
//! determinism smoke: trains the same MLP at a configurable thread
//! count, prints samples/sec, and fingerprints the learned parameters
//! so serial and parallel runs can be diffed bit-for-bit.
//!
//! ```text
//! cargo run --release -p forumcast-ml --example train_throughput -- \
//!     --threads 2 --samples 2048 --epochs 8
//! ```

use std::time::Instant;

use forumcast_ml::{Activation, Adam, LayerSpec, Mlp, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arg(name: &str, default: usize) -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            let v = args
                .next()
                .unwrap_or_else(|| panic!("{name} needs a value"));
            return v
                .parse()
                .unwrap_or_else(|_| panic!("{name} expects an integer, got `{v}`"));
        }
    }
    default
}

/// FNV-1a over the parameter bits — stable, order-sensitive, and
/// cheap enough for a smoke script to diff.
fn params_fnv(mlp: &Mlp) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in mlp.params() {
        for byte in p.to_bits().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn main() {
    let threads = arg("--threads", 1);
    let samples = arg("--samples", 2048);
    let epochs = arg("--epochs", 8);

    let mut rng = StdRng::seed_from_u64(12345);
    let mut mlp = Mlp::new(
        &[
            LayerSpec::new(8, 32, Activation::Tanh),
            LayerSpec::new(32, 1, Activation::Identity),
        ],
        &mut rng,
    );
    let xs: Vec<Vec<f64>> = (0..samples)
        .map(|i| {
            (0..8)
                .map(|j| ((i * 13 + j * 5) as f64 * 0.07).sin())
                .collect()
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x[0] * x[1] - 0.5 * x[2] + x[7].tanh())
        .collect();

    let mut trainer = Trainer::new(Adam::new(0.01), 256).with_threads(threads);
    let start = Instant::now();
    let mut mse = 0.0;
    for _ in 0..epochs {
        mse = trainer.epoch(&mut mlp, &xs, &ys, &mut rng);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let sps = (samples * epochs) as f64 / elapsed;

    println!("threads={threads} samples={samples} epochs={epochs}");
    println!("final_mse={mse:.6}");
    println!("samples_per_sec={sps:.0}");
    println!("params_fnv={:016x}", params_fnv(&mlp));
}
