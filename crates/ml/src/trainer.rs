//! Mini-batch MSE regression driver for [`Mlp`] networks.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use forumcast_resilience::fault::{self, FaultSite};

use crate::batch;
use crate::error::TrainError;
use crate::mlp::{Mlp, MlpScratch};
use crate::optim::Optimizer;
use crate::train_state::{SnapshotOptimizer, TrainState, TrainStateError};

/// Trains an [`Mlp`] with scalar output on `(x, y)` pairs by
/// mini-batch gradient descent on the mean-squared error — the
/// training loop behind the paper's net-vote network (Section II-A2).
///
/// # Example
///
/// See the crate-level example in [`crate`].
#[derive(Debug)]
pub struct Trainer<O> {
    optimizer: O,
    batch_size: usize,
    weight_decay: f64,
    threads: usize,
    grads: Vec<f64>,
    chunk_buf: Vec<f64>,
    scratch: MlpScratch,
    order: Vec<usize>,
    epochs_run: usize,
    steps_run: u64,
}

impl<O: Optimizer> Trainer<O> {
    /// Creates a trainer with the given optimizer and batch size.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size == 0`.
    pub fn new(optimizer: O, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Trainer {
            optimizer,
            batch_size,
            weight_decay: 0.0,
            threads: 0,
            grads: Vec::new(),
            chunk_buf: Vec::new(),
            scratch: MlpScratch::new(),
            order: Vec::new(),
            epochs_run: 0,
            steps_run: 0,
        }
    }

    /// Sets L2 weight decay applied to every parameter each step —
    /// the regularizer that keeps small training sets from being
    /// memorized.
    ///
    /// # Panics
    ///
    /// Panics when `weight_decay < 0`.
    pub fn with_weight_decay(mut self, weight_decay: f64) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }

    /// Sets the worker-thread count for mini-batch gradient
    /// accumulation; `0` (the default) follows the crate-global
    /// setting from [`crate::set_train_threads`]. Accumulation uses
    /// the fixed-order chunk reduction of `forumcast-par`, so the
    /// thread count never changes the trained parameters — only wall
    /// time. It is therefore not part of [`TrainState`] snapshots:
    /// a run snapshotted at one thread count resumes bit-identically
    /// at another.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs one epoch over the data in shuffled mini-batches and
    /// returns the epoch's mean squared error (computed online from
    /// pre-update predictions). Returns NaN when training diverged —
    /// the loss or the parameters went non-finite; [`Self::try_epoch`]
    /// surfaces that as a typed error instead. An empty dataset is a
    /// no-op: it neither advances the epoch counter nor consumes RNG
    /// state, so snapshots are unaffected.
    ///
    /// Per-sample forward/backward passes run through the trainer's
    /// pooled [`MlpScratch`] and, when more than one worker is
    /// configured ([`Self::with_threads`]), gradient accumulation
    /// fans out across the batch with the fixed-order chunk
    /// reduction — bitwise identical for any thread count.
    ///
    /// Each optimizer step probes the `nan-grad` fault site with the
    /// trainer's cumulative step index, so a [`fault::FaultPlan`] can
    /// corrupt one exact gradient to exercise divergence recovery.
    /// The `ml.epoch.grad_norm` metric reports the mean per-step
    /// gradient norm over the epoch's non-poisoned steps (omitted
    /// when every step was poisoned), so the statistic stays finite
    /// and well-defined under fault injection.
    ///
    /// # Panics
    ///
    /// Panics when `xs`/`ys` lengths differ, the network output is not
    /// scalar, or a sample has the wrong dimension.
    pub fn epoch<R: Rng + ?Sized>(
        &mut self,
        mlp: &mut Mlp,
        xs: &[Vec<f64>],
        ys: &[f64],
        rng: &mut R,
    ) -> f64 {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert_eq!(mlp.output_dim(), 1, "trainer expects a scalar output");
        if xs.is_empty() {
            return 0.0;
        }
        self.epochs_run += 1;
        self.grads.resize(mlp.num_params(), 0.0);
        let threads = batch::effective_threads(self.threads);
        // Telemetry is read-only: norms are accumulated only when a
        // collector is armed and never feed back into the update.
        let telemetry = forumcast_obs::is_enabled();
        let mut norm_sum = 0.0;
        let mut clean_steps = 0u64;
        self.order.clear();
        self.order.extend(0..xs.len());
        self.order.shuffle(rng);
        let mut sse = 0.0;
        let order = std::mem::take(&mut self.order);
        for chunk in order.chunks(self.batch_size) {
            let mlp_ref: &Mlp = mlp;
            sse += batch::accumulate_batch(
                chunk.len(),
                threads,
                &mut self.grads,
                &mut self.chunk_buf,
                &mut self.scratch,
                MlpScratch::new,
                |range, scratch, buf| {
                    let mut partial = 0.0;
                    for pos in range {
                        let i = chunk[pos];
                        let out = mlp_ref.forward_scratch(&xs[i], scratch);
                        let err = out[0] - ys[i];
                        partial += err * err;
                        // d/dŷ of ½(ŷ−y)² scaled by 2/batch → err * 2 / n.
                        let go = [2.0 * err / chunk.len() as f64];
                        mlp_ref.backward_scratch(scratch, &go, buf);
                    }
                    partial
                },
            );
            if self.weight_decay > 0.0 {
                for (g, p) in self.grads.iter_mut().zip(mlp.params()) {
                    *g += self.weight_decay * p;
                }
            }
            let poisoned = fault::fires(FaultSite::NanGrad, self.steps_run);
            if poisoned {
                self.grads[0] = f64::NAN;
            } else if telemetry {
                norm_sum += crate::linalg::norm2(&self.grads);
                clean_steps += 1;
            }
            self.steps_run += 1;
            self.optimizer.step(mlp.params_mut(), &self.grads);
        }
        self.order = order;
        // A NaN gradient poisons the parameters, not necessarily the
        // pre-update loss of this epoch — check both.
        let mse = if mlp.params().iter().all(|p| p.is_finite()) {
            sse / xs.len() as f64
        } else {
            f64::NAN
        };
        if telemetry {
            let epoch = (self.epochs_run - 1) as u64;
            forumcast_obs::metric("ml.epoch.loss", epoch, mse);
            if clean_steps > 0 {
                forumcast_obs::metric("ml.epoch.grad_norm", epoch, norm_sum / clean_steps as f64);
            }
        }
        mse
    }

    /// Like [`Self::epoch`], but surfaces divergence (non-finite loss
    /// or parameters) as [`TrainError::Diverged`] naming the epoch.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Diverged`] when this epoch's loss or the
    /// post-epoch parameters are non-finite.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::epoch`].
    pub fn try_epoch<R: Rng + ?Sized>(
        &mut self,
        mlp: &mut Mlp,
        xs: &[Vec<f64>],
        ys: &[f64],
        rng: &mut R,
    ) -> Result<f64, TrainError> {
        let epoch = self.epochs_run;
        let mse = self.epoch(mlp, xs, ys, rng);
        if mse.is_finite() {
            Ok(mse)
        } else {
            Err(TrainError::Diverged { epoch })
        }
    }

    /// Epochs run so far (counting diverged ones).
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// The underlying optimizer.
    pub fn optimizer_mut(&mut self) -> &mut O {
        &mut self.optimizer
    }
}

impl<O: Optimizer + SnapshotOptimizer> Trainer<O> {
    /// Captures a crash-consistent snapshot at the current epoch
    /// boundary: network parameters, full optimizer state, weight
    /// decay, epoch/step counters, and the shuffle-RNG state. Take it
    /// only between [`Self::epoch`] calls — mid-epoch state is not
    /// representable.
    pub fn snapshot(&self, mlp: &Mlp, rng: &StdRng) -> TrainState {
        TrainState {
            params: mlp.params().to_vec(),
            optimizer: self.optimizer.to_state(),
            weight_decay: self.weight_decay,
            epoch: self.epochs_run as u64,
            steps: self.steps_run,
            rng: rng.state(),
        }
    }

    /// Restores a snapshot taken by [`Self::snapshot`], after which
    /// further epochs continue bitwise-identically to the original
    /// run (same parameters, moments, step indices, and shuffles).
    ///
    /// # Errors
    ///
    /// Returns [`TrainStateError`] when the snapshot's parameter
    /// count does not match `mlp`, the optimizer variant differs, or
    /// the RNG state is degenerate.
    pub fn restore(
        &mut self,
        state: &TrainState,
        mlp: &mut Mlp,
        rng: &mut StdRng,
    ) -> Result<(), TrainStateError> {
        if state.params.len() != mlp.num_params() {
            return Err(TrainStateError::ParamShape {
                expected: mlp.num_params(),
                found: state.params.len(),
            });
        }
        if state.rng == [0; 4] {
            return Err(TrainStateError::DegenerateRng);
        }
        self.optimizer = O::from_state(&state.optimizer)?;
        self.weight_decay = state.weight_decay;
        self.epochs_run = state.epoch as usize;
        self.steps_run = state.steps;
        mlp.params_mut().copy_from_slice(&state.params);
        *rng = StdRng::from_state(state.rng);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::mlp::LayerSpec;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_nonlinear_function() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut mlp = Mlp::new(
            &[
                LayerSpec::new(1, 16, Activation::Tanh),
                LayerSpec::new(16, 1, Activation::Identity),
            ],
            &mut rng,
        );
        let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 32.0 - 1.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
        let mut trainer = Trainer::new(Adam::new(0.01), 16);
        let first = trainer.epoch(&mut mlp, &xs, &ys, &mut rng);
        let mut last = first;
        for _ in 0..500 {
            last = trainer.epoch(&mut mlp, &xs, &ys, &mut rng);
        }
        assert!(last < first / 10.0, "mse {first} -> {last}");
        assert!((mlp.forward(&[0.5])[0] - 0.25).abs() < 0.1);
    }

    #[test]
    fn empty_epoch_returns_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut mlp = Mlp::new(&[LayerSpec::new(1, 1, Activation::Identity)], &mut rng);
        let mut trainer = Trainer::new(Adam::new(0.01), 4);
        assert_eq!(trainer.epoch(&mut mlp, &[], &[], &mut rng), 0.0);
    }

    #[test]
    fn empty_epoch_does_not_advance_counters_rng_or_snapshot() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut mlp = Mlp::new(&[LayerSpec::new(1, 1, Activation::Identity)], &mut rng);
        let mut trainer = Trainer::new(Adam::new(0.01), 4);
        let before = trainer.snapshot(&mlp, &rng);
        trainer.epoch(&mut mlp, &[], &[], &mut rng);
        assert_eq!(trainer.epochs_run(), 0, "empty epoch must not count");
        let after = trainer.snapshot(&mlp, &rng);
        assert_eq!(
            before.to_json(),
            after.to_json(),
            "empty epoch must leave snapshot state (epoch, steps, RNG) untouched"
        );
        // A real epoch afterwards still numbers itself from 0.
        let (xs, ys) = toy();
        trainer.epoch(&mut mlp, &xs, &ys, &mut rng);
        assert_eq!(trainer.epochs_run(), 1);
    }

    #[test]
    #[should_panic(expected = "scalar output")]
    fn multi_output_network_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut mlp = Mlp::new(&[LayerSpec::new(1, 2, Activation::Identity)], &mut rng);
        let mut trainer = Trainer::new(Adam::new(0.01), 4);
        trainer.epoch(&mut mlp, &[vec![0.0]], &[0.0], &mut rng);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        Trainer::new(Adam::new(0.01), 0);
    }

    fn toy() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64 / 16.0 - 1.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0]).collect();
        (xs, ys)
    }

    #[test]
    fn injected_nan_gradient_is_detected_as_divergence() {
        let _guard = forumcast_resilience::FaultPlan::parse("nan-grad:2")
            .unwrap()
            .arm();
        let mut rng = StdRng::seed_from_u64(3);
        let mut mlp = Mlp::new(&[LayerSpec::new(1, 1, Activation::Identity)], &mut rng);
        let (xs, ys) = toy();
        let mut trainer = Trainer::new(Adam::new(0.01), 16);
        // 2 batches per epoch → step 2 is the first batch of epoch 1.
        assert!(trainer.try_epoch(&mut mlp, &xs, &ys, &mut rng).is_ok());
        match trainer.try_epoch(&mut mlp, &xs, &ys, &mut rng) {
            Err(TrainError::Diverged { epoch }) => assert_eq!(epoch, 1),
            other => panic!("expected divergence at epoch 1, got {other:?}"),
        }
        assert_eq!(trainer.epochs_run(), 2);
    }

    #[test]
    fn snapshot_restore_resumes_bitwise_identically() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut mlp = Mlp::new(
            &[
                LayerSpec::new(1, 6, Activation::Tanh),
                LayerSpec::new(6, 1, Activation::Identity),
            ],
            &mut rng,
        );
        let (xs, ys) = toy();
        let mut trainer = Trainer::new(Adam::new(0.01), 8).with_weight_decay(1e-3);
        for _ in 0..5 {
            trainer.epoch(&mut mlp, &xs, &ys, &mut rng);
        }
        let state = trainer.snapshot(&mlp, &rng);
        // Round-trip through JSON, as the sub-fold checkpoint does.
        let state = crate::TrainState::from_json(&state.to_json()).unwrap();
        // Continue the original run 5 more epochs.
        for _ in 0..5 {
            trainer.epoch(&mut mlp, &xs, &ys, &mut rng);
        }
        // Restore into a fresh trainer/network/RNG and continue.
        let mut rng2 = StdRng::seed_from_u64(0);
        let mut mlp2 = Mlp::new(
            &[
                LayerSpec::new(1, 6, Activation::Tanh),
                LayerSpec::new(6, 1, Activation::Identity),
            ],
            &mut rng2,
        );
        let mut trainer2 = Trainer::new(Adam::new(0.01), 8);
        trainer2.restore(&state, &mut mlp2, &mut rng2).unwrap();
        assert_eq!(trainer2.epochs_run(), 5);
        for _ in 0..5 {
            trainer2.epoch(&mut mlp2, &xs, &ys, &mut rng2);
        }
        let a: Vec<u64> = mlp.params().iter().map(|p| p.to_bits()).collect();
        let b: Vec<u64> = mlp2.params().iter().map(|p| p.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn restore_rejects_wrong_parameter_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut small = Mlp::new(&[LayerSpec::new(1, 1, Activation::Identity)], &mut rng);
        let mut trainer = Trainer::new(Adam::new(0.01), 4);
        trainer.epoch(&mut small, &[vec![0.5]], &[1.0], &mut rng);
        let state = trainer.snapshot(&small, &rng);
        let mut big = Mlp::new(&[LayerSpec::new(3, 1, Activation::Identity)], &mut rng);
        let err = trainer.restore(&state, &mut big, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            crate::TrainStateError::ParamShape {
                expected: 4,
                found: 2
            }
        ));
    }

    #[test]
    fn healthy_training_never_reports_divergence() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut out = Mlp::new(
            &[
                LayerSpec::new(1, 4, Activation::Tanh),
                LayerSpec::new(4, 1, Activation::Identity),
            ],
            &mut rng,
        );
        let (xs, ys) = toy();
        let mut trainer = Trainer::new(Adam::new(0.01), 8);
        for _ in 0..20 {
            trainer.try_epoch(&mut out, &xs, &ys, &mut rng).unwrap();
        }
        assert_eq!(trainer.epochs_run(), 20);
    }
}
