//! Small dense vector helpers used across the ML stack.

/// Dot product `aᵀb`.
///
/// # Panics
///
/// Panics when lengths differ.
///
/// # Example
///
/// ```
/// use forumcast_ml::linalg::dot;
/// assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// In-place scaling `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Population standard deviation (0 for empty input).
pub fn std_dev(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    (x.iter().map(|&v| (v - m).powi(2)).sum::<f64>() / x.len() as f64).sqrt()
}

/// Median of a slice (0 for empty input); the paper uses medians for
/// response-time features to resist outliers (footnote 4).
pub fn median(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut v = x.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[3.0, 4.0], &[3.0, 4.0]), 25.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, -2.0]);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }
}
