//! Small dense vector/matrix kernels used across the ML stack.
//!
//! These are the shared inner loops of every trainer in the crate:
//! MLP forward/backward ([`gemv`], [`rank1_accum`], [`gemv_t_accum`]),
//! the GLM fitters and MF/SPARFA ([`dot`], [`axpy`]). They are written
//! as blocked, autovectorizable slice loops with **fixed** blocking,
//! because the blocking determines how floating-point sums associate:
//! changing it changes results bitwise, and the crate's determinism
//! guarantees (1-vs-N-thread parity, snapshot/resume) assume every
//! code path reduces through these exact kernels.

/// Dot product `aᵀb`.
///
/// Accumulates in four independent lanes (plus a serial tail), combined
/// as `(acc₀+acc₂) + (acc₁+acc₃) + tail`. The 4-lane blocking is part
/// of the function's value contract — all trainers share it, so every
/// forward pass and gradient in the crate associates identically.
///
/// # Panics
///
/// Panics when lengths differ.
///
/// # Example
///
/// ```
/// use forumcast_ml::linalg::dot;
/// assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let split = a.len() - a.len() % 4;
    let mut acc = [0.0f64; 4];
    for (ca, cb) in a[..split].chunks_exact(4).zip(b[..split].chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    for (x, y) in a[split..].iter().zip(&b[split..]) {
        tail += x * y;
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Row-major matrix–vector product with bias:
/// `out[o] = w[o·cols .. (o+1)·cols] · x + bias[o]` — the MLP layer
/// forward kernel (each row reduced by [`dot`]).
///
/// # Panics
///
/// Panics when any slice length disagrees with `rows`/`cols`.
pub fn gemv(w: &[f64], rows: usize, cols: usize, x: &[f64], bias: &[f64], out: &mut [f64]) {
    assert_eq!(w.len(), rows * cols, "gemv: weight shape mismatch");
    assert_eq!(x.len(), cols, "gemv: input length mismatch");
    assert_eq!(bias.len(), rows, "gemv: bias length mismatch");
    assert_eq!(out.len(), rows, "gemv: output length mismatch");
    for ((row, b), z) in w.chunks_exact(cols).zip(bias).zip(out.iter_mut()) {
        *z = dot(row, x) + b;
    }
}

/// Accumulating transposed matrix–vector product `out += wᵀ d` for a
/// row-major `rows × cols` matrix — the backpropagation kernel that
/// pushes a layer's δ back to its input (one [`axpy`] per row, in row
/// order).
///
/// # Panics
///
/// Panics when any slice length disagrees with `rows`/`cols`.
pub fn gemv_t_accum(w: &[f64], rows: usize, cols: usize, d: &[f64], out: &mut [f64]) {
    assert_eq!(w.len(), rows * cols, "gemv_t_accum: weight shape mismatch");
    assert_eq!(d.len(), rows, "gemv_t_accum: delta length mismatch");
    assert_eq!(out.len(), cols, "gemv_t_accum: output length mismatch");
    for (row, &di) in w.chunks_exact(cols).zip(d) {
        axpy(di, row, out);
    }
}

/// Accumulating rank-1 update `gw += d ⊗ x` for a row-major
/// `rows × cols` gradient buffer — the weight-gradient kernel (one
/// [`axpy`] per row, in row order).
///
/// # Panics
///
/// Panics when any slice length disagrees with `rows`/`cols`.
pub fn rank1_accum(gw: &mut [f64], rows: usize, cols: usize, d: &[f64], x: &[f64]) {
    assert_eq!(gw.len(), rows * cols, "rank1_accum: weight shape mismatch");
    assert_eq!(d.len(), rows, "rank1_accum: delta length mismatch");
    assert_eq!(x.len(), cols, "rank1_accum: input length mismatch");
    for (row, &di) in gw.chunks_exact_mut(cols).zip(d) {
        axpy(di, x, row);
    }
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// In-place scaling `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Population standard deviation (0 for empty input).
pub fn std_dev(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    (x.iter().map(|&v| (v - m).powi(2)).sum::<f64>() / x.len() as f64).sqrt()
}

/// Median of a slice (0 for empty input); the paper uses medians for
/// response-time features to resist outliers (footnote 4).
///
/// Uses `select_nth_unstable_by` with the `total_cmp` order (the same
/// tiebreak discipline as the topic crate's `top_words`), so it runs
/// in O(n) instead of a full sort while returning exactly what the
/// sorted definition would — including on ties and signed zeros.
pub fn median(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut v = x.to_vec();
    let n = v.len();
    let (lower, upper, _) = v.select_nth_unstable_by(n / 2, f64::total_cmp);
    if n % 2 == 1 {
        *upper
    } else {
        // The lower partition holds the multiset of the n/2 smallest
        // elements, so its total_cmp-max is the sorted v[n/2 - 1].
        let low = lower
            .iter()
            .copied()
            .max_by(f64::total_cmp)
            .expect("even length >= 2 has a non-empty lower half");
        0.5 * (low + *upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[3.0, 4.0], &[3.0, 4.0]), 25.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn dot_matches_reference_across_remainder_lengths() {
        // Exercise every `len % 4` residue across the blocked path.
        for n in 0..23usize {
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.91).cos()).collect();
            let reference: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - reference).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn gemv_matches_per_row_dot() {
        // 3×5 row-major matrix.
        let w: Vec<f64> = (0..15).map(|i| (i as f64 * 0.21).sin()).collect();
        let x: Vec<f64> = (0..5).map(|i| 0.3 * i as f64 - 0.7).collect();
        let bias = [0.1, -0.2, 0.3];
        let mut out = [0.0; 3];
        gemv(&w, 3, 5, &x, &bias, &mut out);
        for o in 0..3 {
            let expected = dot(&w[o * 5..(o + 1) * 5], &x) + bias[o];
            assert_eq!(out[o].to_bits(), expected.to_bits(), "row {o}");
        }
    }

    #[test]
    fn gemv_t_accum_matches_scalar_loops() {
        let w: Vec<f64> = (0..12).map(|i| (i as f64 * 0.53).cos()).collect();
        let d = [0.5, -1.5, 2.0];
        let mut out = vec![0.1; 4];
        let mut expected = out.clone();
        for o in 0..3 {
            for i in 0..4 {
                expected[i] += d[o] * w[o * 4 + i];
            }
        }
        gemv_t_accum(&w, 3, 4, &d, &mut out);
        for (a, e) in out.iter().zip(&expected) {
            assert_eq!(a.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn rank1_accum_matches_scalar_loops() {
        let mut gw = vec![0.25; 6];
        let d = [2.0, -3.0];
        let x = [0.5, 1.5, -0.5];
        let mut expected = gw.clone();
        for o in 0..2 {
            for i in 0..3 {
                expected[o * 3 + i] += d[o] * x[i];
            }
        }
        rank1_accum(&mut gw, 2, 3, &d, &x);
        for (a, e) in gw.iter().zip(&expected) {
            assert_eq!(a.to_bits(), e.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "weight shape mismatch")]
    fn gemv_shape_mismatch_panics() {
        let mut out = [0.0; 2];
        gemv(&[1.0; 5], 2, 3, &[0.0; 3], &[0.0; 2], &mut out);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, -2.0]);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn median_matches_full_sort_definition() {
        // Includes ties and signed zeros, where the selection path must
        // reproduce the sorted definition bit-for-bit.
        let cases: Vec<Vec<f64>> = vec![
            vec![2.0, 2.0, 2.0, 2.0],
            vec![-0.0, 0.0],
            vec![0.0, -0.0, 1.0, -1.0],
            vec![1.0; 7],
            (0..101).map(|i| ((i * 37) % 101) as f64 - 50.0).collect(),
            (0..100).map(|i| ((i * 13) % 25) as f64).collect(),
        ];
        for case in cases {
            let mut sorted = case.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let n = sorted.len();
            let expected = if n % 2 == 1 {
                sorted[n / 2]
            } else {
                0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
            };
            assert_eq!(median(&case).to_bits(), expected.to_bits(), "case {case:?}");
        }
    }
}
