//! Poisson regression — the paper's baseline for response-time
//! prediction (`r̂`, Section IV-A(iii)).
//!
//! The paper regresses the discretized response time
//! `r̃_{u,q} = ⌈r_{u,q}⌉` on the features `x_{u,q}` with a log-link
//! Poisson GLM, as used for web-traffic inter-arrival modeling
//! (Karagiannis et al., INFOCOM 2004).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::glm::{self, GlmScratch};
use crate::linalg::dot;
use crate::optim::Adam;
use crate::train_state::{glm_snapshot, restore_glm, TrainState, TrainStateError};

/// Poisson GLM `λ(x) = exp(xᵀβ + b)`, fitted by maximizing the
/// Poisson log-likelihood `Σ (y ln λ − λ)` with Adam.
///
/// # Example
///
/// ```
/// use forumcast_ml::PoissonRegression;
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(0);
/// // y ≈ exp(1 + x).
/// let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 25.0 - 1.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (1.0 + x[0]).exp().round()).collect();
/// let mut model = PoissonRegression::new(1);
/// model.fit(&xs, &ys, 800, 0.05, 1e-6, &mut rng);
/// assert!((model.predict(&[0.0]) - 1f64.exp()).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoissonRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl PoissonRegression {
    /// Creates a zero-initialized model for `dim` features.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        PoissonRegression {
            weights: vec![0.0; dim],
            bias: 0.0,
        }
    }

    /// The regression coefficients.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Predicted rate `λ(x) = exp(xᵀβ + b)`. The linear predictor is
    /// clamped to `[-30, 30]` to keep the exponential finite.
    ///
    /// # Panics
    ///
    /// Panics when `x.len()` differs from the model dimension.
    pub fn predict(&self, x: &[f64]) -> f64 {
        (dot(&self.weights, x) + self.bias).clamp(-30.0, 30.0).exp()
    }

    /// Mean Poisson deviance-like loss `mean(λ − y ln λ)` plus L2.
    ///
    /// # Panics
    ///
    /// Panics when `xs` and `ys` lengths differ.
    pub fn loss(&self, xs: &[Vec<f64>], ys: &[f64], l2: f64) -> f64 {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        if xs.is_empty() {
            return 0.0;
        }
        let nll: f64 = xs
            .iter()
            .zip(ys)
            .map(|(x, &y)| {
                let lambda = self.predict(x);
                lambda - y * lambda.ln()
            })
            .sum();
        nll / xs.len() as f64 + 0.5 * l2 * dot(&self.weights, &self.weights)
    }

    /// Fits by mini-batch Adam on the negative log-likelihood with
    /// batch size 32 and the crate-global thread setting (see
    /// [`crate::set_train_threads`]). Targets must be non-negative
    /// (counts or discretized times).
    ///
    /// Each epoch shuffles a fresh identity permutation, so the RNG
    /// state alone determines the remaining schedule — the property
    /// sub-fold resume ([`Self::fit_resumable`]) relies on.
    ///
    /// # Panics
    ///
    /// Panics when lengths mismatch or a target is negative.
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        epochs: usize,
        lr: f64,
        l2: f64,
        rng: &mut R,
    ) {
        self.fit_with(xs, ys, epochs, lr, l2, 32, 0, rng);
    }

    /// [`Self::fit`] with explicit batch size and worker-thread count
    /// (`threads == 0` uses the crate-global setting). Gradient
    /// accumulation follows the fixed-order chunk reduction, so any
    /// thread count yields bitwise-identical parameters.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::fit`], plus `batch_size == 0`.
    #[allow(clippy::too_many_arguments)] // fit's knobs plus the batch/thread pair
    pub fn fit_with<R: Rng + ?Sized>(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        epochs: usize,
        lr: f64,
        l2: f64,
        batch_size: usize,
        threads: usize,
        rng: &mut R,
    ) {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(
            ys.iter().all(|&y| y >= 0.0),
            "poisson targets must be non-negative"
        );
        if xs.is_empty() {
            return;
        }
        let mut params: Vec<f64> = self.weights.clone();
        params.push(self.bias);
        let mut opt = Adam::new(lr);
        let mut scratch = GlmScratch::default();
        for _ in 0..epochs {
            glm::epoch_pass(
                &mut params,
                &mut opt,
                xs,
                l2,
                batch_size,
                threads,
                &mut scratch,
                rng,
                |z, i| z.clamp(-30.0, 30.0).exp() - ys[i],
            );
        }
        self.bias = params.pop().expect("bias present");
        self.weights = params;
    }

    /// [`Self::fit`] with epoch-granular checkpointing: when `resume`
    /// is given, training continues from that snapshot and finishes
    /// bitwise-identically to an uninterrupted `fit`; every
    /// `snapshot_every` completed epochs (0 disables) `on_snapshot`
    /// receives a fresh [`TrainState`] to persist.
    ///
    /// # Errors
    ///
    /// Returns [`TrainStateError`] when `resume` does not fit this
    /// model (wrong parameter count, non-Adam optimizer, degenerate
    /// RNG state).
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::fit`].
    #[allow(clippy::too_many_arguments)] // resume plumbing mirrors `fit` plus the snapshot triple
    pub fn fit_resumable(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        epochs: usize,
        lr: f64,
        l2: f64,
        rng: &mut StdRng,
        resume: Option<&TrainState>,
        snapshot_every: usize,
        on_snapshot: &mut dyn FnMut(&TrainState),
    ) -> Result<(), TrainStateError> {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(
            ys.iter().all(|&y| y >= 0.0),
            "poisson targets must be non-negative"
        );
        if xs.is_empty() {
            return Ok(());
        }
        let mut params: Vec<f64> = self.weights.clone();
        params.push(self.bias);
        let mut opt = Adam::new(lr);
        let mut start = 0;
        if let Some(state) = resume {
            restore_glm(state, &mut params, &mut opt, rng)?;
            start = state.epoch as usize;
        }
        let mut scratch = GlmScratch::default();
        for epoch in start..epochs {
            glm::epoch_pass(
                &mut params,
                &mut opt,
                xs,
                l2,
                32,
                0,
                &mut scratch,
                rng,
                |z, i| z.clamp(-30.0, 30.0).exp() - ys[i],
            );
            if snapshot_every > 0 && (epoch + 1) % snapshot_every == 0 && epoch + 1 < epochs {
                on_snapshot(&glm_snapshot(&params, &opt, l2, epoch + 1, rng));
            }
        }
        self.bias = params.pop().expect("bias present");
        self.weights = params;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_log_linear_rates() {
        let mut rng = StdRng::seed_from_u64(13);
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| (0.5 + x[0] - 0.5 * x[1]).exp()).collect();
        let mut model = PoissonRegression::new(2);
        model.fit(&xs, &ys, 400, 0.05, 0.0, &mut rng);
        assert!(
            (model.weights()[0] - 1.0).abs() < 0.15,
            "{:?}",
            model.weights()
        );
        assert!(
            (model.weights()[1] + 0.5).abs() < 0.15,
            "{:?}",
            model.weights()
        );
        assert!((model.bias() - 0.5).abs() < 0.15, "{}", model.bias());
    }

    #[test]
    fn loss_decreases_with_training() {
        let mut rng = StdRng::seed_from_u64(14);
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 7) as f64 / 7.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (2.0 * x[0]).exp().round()).collect();
        let mut model = PoissonRegression::new(1);
        let before = model.loss(&xs, &ys, 0.0);
        model.fit(&xs, &ys, 200, 0.05, 0.0, &mut rng);
        assert!(model.loss(&xs, &ys, 0.0) < before);
    }

    #[test]
    fn intercept_only_fits_mean_rate() {
        let mut rng = StdRng::seed_from_u64(15);
        let xs: Vec<Vec<f64>> = (0..100).map(|_| vec![0.0]).collect();
        let ys: Vec<f64> = (0..100).map(|i| (i % 5) as f64).collect(); // mean 2
        let mut model = PoissonRegression::new(1);
        model.fit(&xs, &ys, 500, 0.02, 0.0, &mut rng);
        // Mini-batch Adam with a constant step hovers near the MLE
        // (the sample mean, 2); allow that residual wander.
        assert!((model.predict(&[0.0]) - 2.0).abs() < 0.25);
    }

    #[test]
    fn extreme_inputs_stay_finite() {
        let model = PoissonRegression {
            weights: vec![100.0],
            bias: 0.0,
        };
        assert!(model.predict(&[100.0]).is_finite());
        assert!(model.predict(&[-100.0]) > 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_targets_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        PoissonRegression::new(1).fit(&[vec![0.0]], &[-1.0], 1, 0.1, 0.0, &mut rng);
    }

    #[test]
    fn resume_from_snapshot_is_bitwise_identical() {
        let mut rng = StdRng::seed_from_u64(31);
        let xs: Vec<Vec<f64>> = (0..80).map(|_| vec![rng.gen_range(-1.0..1.0)]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (0.5 + x[0]).exp().round()).collect();
        let seed_rng = rng.clone();
        let mut reference = PoissonRegression::new(1);
        let mut snapshots = Vec::new();
        reference
            .fit_resumable(&xs, &ys, 24, 0.05, 1e-6, &mut rng, None, 10, &mut |s| {
                snapshots.push(s.clone())
            })
            .unwrap();
        // Plain fit matches the resumable path bitwise.
        let mut plain = PoissonRegression::new(1);
        plain.fit(&xs, &ys, 24, 0.05, 1e-6, &mut seed_rng.clone());
        assert_eq!(plain.bias().to_bits(), reference.bias().to_bits());
        assert!(!snapshots.is_empty());
        for snap in &snapshots {
            let snap = TrainState::from_json(&snap.to_json()).unwrap();
            let mut resumed = PoissonRegression::new(1);
            let mut rng = seed_rng.clone();
            resumed
                .fit_resumable(
                    &xs,
                    &ys,
                    24,
                    0.05,
                    1e-6,
                    &mut rng,
                    Some(&snap),
                    0,
                    &mut |_| {},
                )
                .unwrap();
            assert_eq!(
                reference.weights()[0].to_bits(),
                resumed.weights()[0].to_bits()
            );
            assert_eq!(reference.bias().to_bits(), resumed.bias().to_bits());
        }
    }

    #[test]
    fn empty_fit_is_noop() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = PoissonRegression::new(2);
        model.fit(&[], &[], 5, 0.1, 0.0, &mut rng);
        assert_eq!(model.weights(), &[0.0, 0.0]);
    }
}
