//! Shared mini-batch epoch pass for the GLM fitters (logistic and
//! Poisson regression).
//!
//! Both models are linear predictors `z = xᵀβ + b` whose per-sample
//! gradient is `err(z, i) · [x, 1]`; only the error function differs
//! (sigmoid residual vs. exponential-rate residual). The pass below
//! factors that shape out once, on top of
//! [`crate::batch::accumulate_batch`], so both fitters inherit the
//! allocation-free kernels and the fixed-order 1-vs-N-thread
//! determinism discipline — and stay numerically identical between
//! their plain and resumable entry points, which is what makes
//! resumed runs bitwise-equal to uninterrupted ones.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::batch;
use crate::linalg::{axpy, dot};
use crate::optim::{Adam, Optimizer};

/// Reusable buffers for [`epoch_pass`]: the merged batch gradient,
/// the pooled per-chunk buffer, and the shuffled sample order. One
/// instance serves a whole `fit` call without reallocating.
#[derive(Debug, Default)]
pub(crate) struct GlmScratch {
    grads: Vec<f64>,
    chunk_buf: Vec<f64>,
    order: Vec<usize>,
}

/// One shuffled mini-batch pass over `xs` for a flat parameter vector
/// `[weights..., bias]`.
///
/// `err_of(z, i)` maps the linear predictor of sample `i` to the
/// gradient residual (`∂loss/∂z`). Gradients accumulate through the
/// fixed-order chunk reduction, so any `threads` value produces
/// bitwise-identical parameters; `threads == 0` falls back to the
/// crate-global [`crate::set_train_threads`] setting.
///
/// # Panics
///
/// Panics when `batch_size == 0` or a sample's dimension disagrees
/// with `params`.
#[allow(clippy::too_many_arguments)] // the shared pass carries both models' knobs
pub(crate) fn epoch_pass<R, E>(
    params: &mut [f64],
    opt: &mut Adam,
    xs: &[Vec<f64>],
    l2: f64,
    batch_size: usize,
    threads: usize,
    scratch: &mut GlmScratch,
    rng: &mut R,
    err_of: E,
) where
    R: Rng + ?Sized,
    E: Fn(f64, usize) -> f64 + Sync,
{
    assert!(batch_size > 0, "batch size must be positive");
    let dim = params.len() - 1;
    let threads = batch::effective_threads(threads);
    scratch.grads.resize(params.len(), 0.0);
    scratch.order.clear();
    scratch.order.extend(0..xs.len());
    scratch.order.shuffle(rng);
    for chunk in scratch.order.chunks(batch_size.min(xs.len().max(1))) {
        let params_view = &params[..];
        batch::accumulate_batch(
            chunk.len(),
            threads,
            &mut scratch.grads,
            &mut scratch.chunk_buf,
            &mut (),
            || (),
            |range, _, buf| {
                for pos in range {
                    let x = &xs[chunk[pos]];
                    assert_eq!(x.len(), dim, "sample dimension mismatch");
                    let z = dot(&params_view[..dim], x) + params_view[dim];
                    let err = err_of(z, chunk[pos]);
                    axpy(err, x, &mut buf[..dim]);
                    buf[dim] += err;
                }
                0.0
            },
        );
        let scale = 1.0 / chunk.len() as f64;
        for (j, g) in scratch.grads.iter_mut().enumerate() {
            *g *= scale;
            if j < dim {
                *g += l2 * params[j];
            }
        }
        opt.step(params, &scratch.grads);
    }
}
