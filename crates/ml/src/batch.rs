//! Deterministic batch-parallel gradient accumulation.
//!
//! All mini-batch trainers in this crate ([`crate::Trainer`], the
//! logistic and Poisson fitters) accumulate per-sample gradients
//! through [`accumulate_batch`], which follows the `forumcast-par`
//! fixed-order reduction discipline: the batch is split into
//! [`forumcast_par::CHUNK_SIZE`]-sample chunks *independent of the
//! thread count*, each chunk folds its samples in order into a
//! zeroed per-chunk buffer, and chunk buffers merge into the batch
//! gradient in chunk order. Serial and parallel paths perform the
//! identical sequence of floating-point additions, so training is
//! **bitwise identical for any thread count** — proven by
//! `tests/parity.rs`.
//!
//! The worker count flows from the crate-global set by
//! [`set_train_threads`] (wired to the CLI `--threads` flag), unless
//! a trainer overrides it per call. The default is 1: parallel
//! gradient accumulation only pays off for batches spanning several
//! chunks, so it is strictly opt-in.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use forumcast_par::CHUNK_SIZE;

static TRAIN_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the crate-global worker-thread count for mini-batch gradient
/// accumulation. `0` means auto: the `FORUMCAST_THREADS` override,
/// else the machine's available parallelism
/// ([`forumcast_par::resolve_threads`]). Thanks to the fixed-order
/// reduction this setting never changes training results, only wall
/// time; it is deliberately *not* part of [`crate::TrainState`], so
/// a run snapshotted at one thread count resumes bit-identically at
/// another.
pub fn set_train_threads(requested: usize) {
    let resolved = forumcast_par::resolve_threads(requested).max(1);
    TRAIN_THREADS.store(resolved, Ordering::Relaxed);
}

/// The crate-global training worker count (default 1; see
/// [`set_train_threads`]).
pub fn train_threads() -> usize {
    TRAIN_THREADS.load(Ordering::Relaxed)
}

/// Resolves a per-call thread override: `0` falls back to the
/// crate-global [`train_threads`].
pub(crate) fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        train_threads()
    } else {
        requested
    }
}

/// Accumulates a mini-batch gradient into `grads` (zeroed first) with
/// the fixed-order chunk reduction, returning the sum of the
/// per-chunk scalars produced by `fold` (loss partials), reduced in
/// chunk order.
///
/// `fold(range, state, buf)` folds the samples of one chunk, in
/// order, into the zeroed gradient buffer `buf`, threading `state`
/// (e.g. an [`crate::MlpScratch`]) through the chunk. On the serial
/// path every chunk reuses `serial_state` and the pooled `chunk_buf`
/// — no allocation. When `threads > 1` and the batch spans more than
/// one chunk, chunks run under [`forumcast_par::parallel_chunk_fold`]
/// with a fresh state from `make_state` and a fresh buffer per chunk;
/// the merge order — and therefore every output bit — is identical to
/// the serial path by construction.
pub(crate) fn accumulate_batch<S, FS, FM>(
    num_items: usize,
    threads: usize,
    grads: &mut [f64],
    chunk_buf: &mut Vec<f64>,
    serial_state: &mut S,
    make_state: FS,
    fold: FM,
) -> f64
where
    S: Send,
    FS: Fn() -> S + Sync,
    FM: Fn(Range<usize>, &mut S, &mut [f64]) -> f64 + Sync,
{
    let n_params = grads.len();
    grads.iter_mut().for_each(|g| *g = 0.0);
    if num_items == 0 {
        return 0.0;
    }
    if threads <= 1 || num_items <= CHUNK_SIZE {
        chunk_buf.resize(n_params, 0.0);
        let mut total = 0.0;
        for range in forumcast_par::chunk_ranges(num_items) {
            chunk_buf.iter_mut().for_each(|g| *g = 0.0);
            total += fold(range, serial_state, chunk_buf);
            crate::linalg::axpy(1.0, chunk_buf, grads);
        }
        total
    } else {
        forumcast_par::parallel_chunk_fold(
            num_items,
            threads,
            |range| {
                let mut state = make_state();
                let mut buf = vec![0.0; n_params];
                let partial = fold(range, &mut state, &mut buf);
                (buf, partial)
            },
            |partials| {
                let mut total = 0.0;
                for (buf, partial) in partials {
                    crate::linalg::axpy(1.0, &buf, grads);
                    total += partial;
                }
                total
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fold whose result is order-sensitive in floating point:
    /// magnitudes spanning ten decades.
    fn wild(i: usize) -> f64 {
        (i as f64 * 0.7391).sin() * 10f64.powi((i as i32 % 11) - 5)
    }

    fn run(n: usize, threads: usize) -> (Vec<u64>, u64) {
        let mut grads = vec![0.0; 8];
        let mut chunk_buf = Vec::new();
        let total = accumulate_batch(
            n,
            threads,
            &mut grads,
            &mut chunk_buf,
            &mut (),
            || (),
            |range, _, buf| {
                let mut partial = 0.0;
                for i in range {
                    for (j, g) in buf.iter_mut().enumerate() {
                        *g += wild(i * 8 + j);
                    }
                    partial += wild(i);
                }
                partial
            },
        );
        let bits = grads.iter().map(|g| g.to_bits()).collect();
        (bits, total.to_bits())
    }

    #[test]
    fn serial_and_parallel_paths_are_bitwise_identical() {
        for n in [1, 63, 64, 65, 200, 513] {
            let serial = run(n, 1);
            for threads in [2, 3, 7] {
                assert_eq!(serial, run(n, threads), "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn empty_batch_zeroes_grads_and_returns_zero() {
        let mut grads = vec![5.0; 4];
        let mut chunk_buf = Vec::new();
        let total = accumulate_batch(
            0,
            4,
            &mut grads,
            &mut chunk_buf,
            &mut (),
            || (),
            |_, _, _| 1.0,
        );
        assert_eq!(total, 0.0);
        assert!(grads.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn thread_settings_resolve_and_default_to_one() {
        assert_eq!(train_threads(), 1);
        assert_eq!(effective_threads(0), 1);
        assert_eq!(effective_threads(5), 5);
        set_train_threads(3);
        assert_eq!(train_threads(), 3);
        assert_eq!(effective_threads(0), 3);
        set_train_threads(0);
        assert!(train_threads() >= 1);
        // Restore the default for other tests in this binary.
        set_train_threads(1);
    }
}
