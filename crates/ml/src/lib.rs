//! From-scratch machine-learning substrate for `forumcast`.
//!
//! The paper trains its predictors with TensorFlow and compares
//! against SPARFA, matrix-factorization, and Poisson-regression
//! baselines (Sections II-A, IV-A). The Rust ML ecosystem has no
//! point-process-ready training stack, so this crate implements
//! everything needed from first principles:
//!
//! * [`linalg`] — blocked dense kernels (`dot`/`axpy`/`gemv`-family)
//!   shared by every trainer, with fixed blocking so all code paths
//!   associate floating-point sums identically;
//! * [`activation`] — ReLU / tanh / sigmoid / softplus / identity;
//! * [`mlp`] — fully-connected networks with flat parameter storage
//!   and reverse-mode gradients ([`Mlp::backward`]), so custom losses
//!   (e.g. the point-process likelihood in `forumcast-core`) can push
//!   arbitrary output gradients through the network; hot loops reuse
//!   an [`MlpScratch`] instead of allocating per sample;
//! * [`optim`] — SGD and Adam (the paper's optimizer);
//! * [`batch`] — deterministic batch-parallel gradient accumulation
//!   ([`set_train_threads`]): fixed-order chunk reduction makes
//!   1-vs-N-thread training bitwise identical;
//! * [`logistic`] — L2-regularized logistic regression (the `â`
//!   predictor);
//! * [`mf`] — biased matrix factorization (baseline for `v̂`);
//! * [`sparfa`] — SPARFA-style sparse logistic factor analysis
//!   (baseline for `â`);
//! * [`poisson`] — Poisson regression (baseline for `r̂`);
//! * [`trainer`] — mini-batch MSE regression driver for MLPs.
//!
//! # Example
//!
//! ```
//! use forumcast_ml::{Activation, Adam, LayerSpec, Mlp, Trainer};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Fit y = 2x on a tiny network.
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut mlp = Mlp::new(
//!     &[LayerSpec::new(1, 8, Activation::Tanh), LayerSpec::new(8, 1, Activation::Identity)],
//!     &mut rng,
//! );
//! let xs: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64 / 32.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0]).collect();
//! let mut trainer = Trainer::new(Adam::new(0.01), 8);
//! for _ in 0..300 {
//!     trainer.epoch(&mut mlp, &xs, &ys, &mut rng);
//! }
//! let pred = mlp.forward(&[0.5])[0];
//! assert!((pred - 1.0).abs() < 0.1);
//! ```

pub mod activation;
pub mod batch;
pub mod error;
mod glm;
pub mod linalg;
pub mod logistic;
pub mod mf;
pub mod mlp;
pub mod optim;
pub mod poisson;
pub mod sparfa;
pub mod train_state;
pub mod trainer;

pub use activation::Activation;
pub use batch::{set_train_threads, train_threads};
pub use error::TrainError;
pub use logistic::LogisticRegression;
pub use mf::{MatrixFactorization, MfConfig};
pub use mlp::{ForwardCache, LayerSpec, Mlp, MlpScratch};
pub use optim::{Adam, Optimizer, Sgd};
pub use poisson::PoissonRegression;
pub use sparfa::{Sparfa, SparfaConfig};
pub use train_state::{OptimizerState, SnapshotOptimizer, TrainState, TrainStateError};
pub use trainer::Trainer;
