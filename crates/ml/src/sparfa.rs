//! SPARFA-style sparse logistic factor analysis — the paper's
//! baseline for the who-will-answer task (`â`, Section IV-A(i),
//! citing Lan et al., JMLR 2014).
//!
//! SPARFA models a binary user × question matrix as
//! `P(Y_{u,q} = 1) = σ(w_uᵀ c_q + μ_q)` with **non-negative** user
//! abilities `w_u`, low latent dimension, and an intrinsic-difficulty
//! intercept `μ_q`. We implement the SPARFA-M flavor: alternating
//! projected SGD on the logistic likelihood.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::sigmoid;
use crate::linalg::dot;

/// Hyperparameters for [`Sparfa`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparfaConfig {
    /// Latent concept dimension (the paper uses 3).
    pub latent_dim: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularization (plays the role of SPARFA's sparsity prior).
    pub l2: f64,
    /// L2 on the question intercepts. Stronger than `l2`: with ~1.5
    /// answers per question, an unregularized intercept memorizes the
    /// question's single training label and anti-generalizes to its
    /// held-out pairs.
    pub intercept_l2: f64,
    /// Training epochs.
    pub epochs: usize,
}

impl Default for SparfaConfig {
    fn default() -> Self {
        SparfaConfig {
            latent_dim: 3,
            learning_rate: 0.05,
            l2: 0.05,
            intercept_l2: 100.0,
            epochs: 60,
        }
    }
}

/// A trained SPARFA model over `(user, question, answered)` samples.
///
/// The predictor is `P(a = 1) = σ(α_u + w_uᵀ c_q + μ_q)`: non-negative
/// abilities `w_u`, non-negative concept loadings `c_q`, a strongly
/// regularized question intercept `μ_q` (intrinsic attractiveness),
/// and a user intercept `α_u` (answering propensity) — the degenerate
/// rank-one direction every logistic matrix factorization learns
/// first, made explicit for stability.
///
/// # Example
///
/// ```
/// use forumcast_ml::{Sparfa, SparfaConfig};
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(0);
/// let obs = vec![(0, 0, true), (0, 1, false), (1, 0, false), (1, 1, true)];
/// let mut model = Sparfa::new(2, 2, SparfaConfig::default(), &mut rng);
/// model.fit(&obs, &mut rng);
/// assert!(model.predict_proba(0, 0) > model.predict_proba(0, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sparfa {
    config: SparfaConfig,
    /// Non-negative user abilities, `num_users × k` flat.
    abilities: Vec<f64>,
    /// Question concept loadings, `num_questions × k` flat.
    loadings: Vec<f64>,
    /// Question intercepts (negated intrinsic difficulty).
    intercepts: Vec<f64>,
    /// User intercepts (answering propensity).
    user_intercepts: Vec<f64>,
}

impl Sparfa {
    /// Creates a model with small random non-negative abilities.
    ///
    /// # Panics
    ///
    /// Panics when `config.latent_dim == 0`.
    pub fn new<R: Rng + ?Sized>(
        num_users: usize,
        num_questions: usize,
        config: SparfaConfig,
        rng: &mut R,
    ) -> Self {
        assert!(config.latent_dim > 0, "latent dimension must be positive");
        let k = config.latent_dim;
        Sparfa {
            config,
            abilities: (0..num_users * k)
                .map(|_| rng.gen_range(0.0..0.1))
                .collect(),
            // Loadings start non-negative so the shared "ability"
            // direction transfers across questions; training may push
            // individual loadings negative.
            loadings: (0..num_questions * k)
                .map(|_| rng.gen_range(0.0..0.1))
                .collect(),
            intercepts: vec![0.0; num_questions],
            user_intercepts: vec![0.0; num_users],
        }
    }

    /// Predicted probability that `user` answers `question`.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    pub fn predict_proba(&self, user: usize, question: usize) -> f64 {
        let k = self.config.latent_dim;
        let w = &self.abilities[user * k..(user + 1) * k];
        let c = &self.loadings[question * k..(question + 1) * k];
        sigmoid(dot(w, c) + self.intercepts[question] + self.user_intercepts[user])
    }

    /// Fits on `(user, question, answered)` observations by projected
    /// SGD; after each step user abilities are clipped to `≥ 0`
    /// (SPARFA's non-negativity constraint).
    pub fn fit<R: Rng + ?Sized>(&mut self, obs: &[(usize, usize, bool)], rng: &mut R) {
        if obs.is_empty() {
            return;
        }
        let k = self.config.latent_dim;
        let lr = self.config.learning_rate;
        let l2 = self.config.l2;
        let mut order: Vec<usize> = (0..obs.len()).collect();
        for _ in 0..self.config.epochs {
            order.shuffle(rng);
            for &idx in &order {
                let (u, q, y) = obs[idx];
                let err = self.predict_proba(u, q) - if y { 1.0 } else { 0.0 };
                // Proximal (implicit) L2 step for the intercept:
                // stable for arbitrarily strong regularization, unlike
                // the explicit `-lr·λ·b` update which diverges when
                // `lr·λ > 2`.
                self.intercepts[q] =
                    (self.intercepts[q] - lr * err) / (1.0 + lr * self.config.intercept_l2);
                self.user_intercepts[u] = (self.user_intercepts[u] - lr * err) / (1.0 + lr * l2);
                // Zipped slice walk over the ability/loading rows: one
                // bounds check per row instead of four per component,
                // with pre-update values read into locals so the
                // coupled update keeps its original semantics.
                let ws = &mut self.abilities[u * k..(u + 1) * k];
                let cs = &mut self.loadings[q * k..(q + 1) * k];
                for (wf, cf) in ws.iter_mut().zip(cs.iter_mut()) {
                    let (w, c) = (*wf, *cf);
                    *wf = (w - lr * (err * c + l2 * w)).max(0.0);
                    // Loadings are clamped non-negative as well: a
                    // question observed only with negative labels then
                    // shrinks toward 0 instead of flipping the sign of
                    // every user's ability contribution, which would
                    // anti-generalize to the question's held-out pairs.
                    *cf = (c - lr * (err * w + l2 * c)).max(0.0);
                }
            }
        }
    }

    /// Mean negative log-likelihood over observations (0 for empty).
    pub fn loss(&self, obs: &[(usize, usize, bool)]) -> f64 {
        if obs.is_empty() {
            return 0.0;
        }
        let nll: f64 = obs
            .iter()
            .map(|&(u, q, y)| {
                let p = self.predict_proba(u, q).clamp(1e-12, 1.0 - 1e-12);
                if y {
                    -p.ln()
                } else {
                    -(1.0 - p).ln()
                }
            })
            .sum();
        nll / obs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Block structure: users 0–9 answer questions 0–9, users 10–19
    /// answer questions 10–19.
    fn block_obs(rng: &mut StdRng) -> Vec<(usize, usize, bool)> {
        let mut obs = Vec::new();
        for u in 0..20 {
            for q in 0..20 {
                if rng.gen_bool(0.7) {
                    let same_block = (u < 10) == (q < 10);
                    obs.push((u, q, same_block));
                }
            }
        }
        obs
    }

    #[test]
    fn learns_block_structure() {
        let mut rng = StdRng::seed_from_u64(7);
        let obs = block_obs(&mut rng);
        let mut model = Sparfa::new(20, 20, SparfaConfig::default(), &mut rng);
        model.fit(&obs, &mut rng);
        // Held-in sanity: same-block pairs score higher on average.
        let mut same = 0.0;
        let mut cross = 0.0;
        let mut ns = 0;
        let mut nc = 0;
        for u in 0..20 {
            for q in 0..20 {
                let p = model.predict_proba(u, q);
                if (u < 10) == (q < 10) {
                    same += p;
                    ns += 1;
                } else {
                    cross += p;
                    nc += 1;
                }
            }
        }
        assert!(
            same / ns as f64 > cross / nc as f64 + 0.2,
            "same {} cross {}",
            same / ns as f64,
            cross / nc as f64
        );
    }

    #[test]
    fn loss_decreases_with_training() {
        let mut rng = StdRng::seed_from_u64(8);
        let obs = block_obs(&mut rng);
        let mut model = Sparfa::new(20, 20, SparfaConfig::default(), &mut rng);
        let before = model.loss(&obs);
        model.fit(&obs, &mut rng);
        assert!(model.loss(&obs) < before);
    }

    #[test]
    fn abilities_stay_non_negative() {
        let mut rng = StdRng::seed_from_u64(9);
        let obs = block_obs(&mut rng);
        let mut model = Sparfa::new(20, 20, SparfaConfig::default(), &mut rng);
        model.fit(&obs, &mut rng);
        assert!(model.abilities.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn empty_fit_is_noop() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut model = Sparfa::new(2, 2, SparfaConfig::default(), &mut rng);
        model.fit(&[], &mut rng);
        assert_eq!(model.loss(&[]), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        let model = Sparfa::new(3, 3, SparfaConfig::default(), &mut rng);
        let json = serde_json::to_string(&model).unwrap();
        let back: Sparfa = serde_json::from_str(&json).unwrap();
        assert_eq!(back.predict_proba(1, 2), model.predict_proba(1, 2));
    }
}
