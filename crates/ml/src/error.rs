//! Training failure modes.

use std::fmt;

/// A training run went numerically bad instead of converging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TrainError {
    /// The epoch loss or the parameters became non-finite — e.g. a
    /// too-aggressive learning rate, or an injected `nan-grad` fault.
    /// Callers are expected to retrain deterministically (same
    /// configuration first, reduced learning rate second) rather than
    /// abort; see `forumcast_core::VotePredictor::train`.
    Diverged {
        /// Zero-based epoch at which divergence was detected.
        epoch: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Diverged { epoch } => {
                write!(f, "training diverged at epoch {epoch}: non-finite loss")
            }
        }
    }
}

impl std::error::Error for TrainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_epoch() {
        let e = TrainError::Diverged { epoch: 17 };
        assert!(e.to_string().contains("epoch 17"));
    }
}
