//! Nonlinearity functions `σ` for neural-network layers.

use serde::{Deserialize, Serialize};

/// Layer nonlinearity. The paper uses ReLU for the net-vote network,
/// tanh for the excitation network's hidden layers, and ReLU on its
/// output to keep the point-process rate positive; `Softplus` is
/// provided as a smooth positive alternative and `Identity` for
/// regression outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit `max(0, z)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid `1 / (1 + e^{-z})`.
    Sigmoid,
    /// Smooth positive `ln(1 + e^z)`.
    Softplus,
    /// No-op, for linear outputs.
    Identity,
}

impl Activation {
    /// Applies the nonlinearity to `z`.
    ///
    /// # Example
    ///
    /// ```
    /// use forumcast_ml::Activation;
    /// assert_eq!(Activation::Relu.apply(-2.0), 0.0);
    /// assert_eq!(Activation::Identity.apply(-2.0), -2.0);
    /// ```
    pub fn apply(self, z: f64) -> f64 {
        match self {
            Activation::Relu => z.max(0.0),
            Activation::Tanh => z.tanh(),
            Activation::Sigmoid => sigmoid(z),
            Activation::Softplus => {
                // Numerically stable: ln(1+e^z) = max(z,0) + ln(1+e^{-|z|}).
                z.max(0.0) + (-z.abs()).exp().ln_1p()
            }
            Activation::Identity => z,
        }
    }

    /// Derivative `σ'(z)` expressed in terms of the *output*
    /// `y = σ(z)`, which is what backpropagation caches.
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            // y = ln(1+e^z) → σ'(z) = sigmoid(z) = 1 − e^{−y}.
            Activation::Softplus => 1.0 - (-y).exp(),
            Activation::Identity => 1.0,
        }
    }
}

/// Numerically stable logistic sigmoid.
///
/// # Example
///
/// ```
/// use forumcast_ml::activation::sigmoid;
/// assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
/// assert!(sigmoid(-800.0) >= 0.0);
/// ```
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Activation; 5] = [
        Activation::Relu,
        Activation::Tanh,
        Activation::Sigmoid,
        Activation::Softplus,
        Activation::Identity,
    ];

    #[test]
    fn apply_known_values() {
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-12);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!((Activation::Softplus.apply(0.0) - 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn softplus_is_stable_for_extreme_inputs() {
        assert!((Activation::Softplus.apply(1000.0) - 1000.0).abs() < 1e-9);
        assert!(Activation::Softplus.apply(-1000.0) >= 0.0);
        assert!(Activation::Softplus.apply(-1000.0) < 1e-12);
    }

    #[test]
    fn sigmoid_is_stable_for_extreme_inputs() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!((sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0) >= 0.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in ALL {
            for &z in &[-1.5, -0.3, 0.2, 0.9, 2.0] {
                let y = act.apply(z);
                let numeric = (act.apply(z + eps) - act.apply(z - eps)) / (2.0 * eps);
                let analytic = act.derivative_from_output(y);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at z={z}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn relu_derivative_is_zero_in_dead_region() {
        let y = Activation::Relu.apply(-5.0);
        assert_eq!(Activation::Relu.derivative_from_output(y), 0.0);
    }
}
