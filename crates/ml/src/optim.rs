//! First-order optimizers: SGD and Adam (the paper's optimizer).

use serde::{Deserialize, Serialize};

/// A first-order optimizer updating a flat parameter vector in place.
///
/// The trait is object-safe so training drivers can be configured at
/// runtime.
pub trait Optimizer {
    /// Applies one update step: `params -= f(grads)`.
    ///
    /// # Panics
    ///
    /// Implementations panic when `params.len() != grads.len()` or the
    /// length changes between calls.
    fn step(&mut self, params: &mut [f64], grads: &[f64]);

    /// Resets internal state (e.g. Adam moments).
    fn reset(&mut self);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient in `[0, 1)`; 0 disables momentum.
    pub momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and no momentum.
    ///
    /// # Panics
    ///
    /// Panics when `learning_rate <= 0`.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Sgd {
            learning_rate,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Sets the momentum coefficient.
    ///
    /// # Panics
    ///
    /// Panics when `momentum` is not in `[0, 1)`.
    pub fn with_momentum(mut self, momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
        self
    }

    /// The momentum velocity vector. Empty until the first step sizes
    /// it to the parameter count.
    pub fn velocity(&self) -> &[f64] {
        &self.velocity
    }

    /// Rebuilds SGD from checkpointed state, velocity included.
    ///
    /// # Panics
    ///
    /// Panics when `learning_rate <= 0` or `momentum` is outside
    /// `[0, 1)` — checkpoint decoding validates these before calling.
    pub fn from_parts(learning_rate: f64, momentum: f64, velocity: Vec<f64>) -> Self {
        let mut sgd = Sgd::new(learning_rate).with_momentum(momentum);
        sgd.velocity = velocity;
        sgd
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        if self.velocity.len() != params.len() {
            assert!(self.velocity.is_empty(), "parameter count changed");
            self.velocity = vec![0.0; params.len()];
        }
        for i in 0..params.len() {
            self.velocity[i] = self.momentum * self.velocity[i] - self.learning_rate * grads[i];
            params[i] += self.velocity[i];
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// The Adam optimizer (Kingma & Ba, 2015) with bias correction —
/// the paper trains all its networks with "the standard Adam
/// optimizer in TensorFlow" (Section II-A, footnote 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate `α`.
    pub learning_rate: f64,
    /// First-moment decay `β₁`.
    pub beta1: f64,
    /// Second-moment decay `β₂`.
    pub beta2: f64,
    /// Numerical-stability constant `ε`.
    pub epsilon: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates Adam with TensorFlow defaults (`β₁ = 0.9`,
    /// `β₂ = 0.999`, `ε = 1e-8`).
    ///
    /// # Panics
    ///
    /// Panics when `learning_rate <= 0`.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of update steps applied so far (the Adam `t` counter).
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The first- and second-moment vectors `(m, v)`. Empty until the
    /// first step sizes them to the parameter count.
    pub fn moments(&self) -> (&[f64], &[f64]) {
        (&self.m, &self.v)
    }

    /// Rebuilds Adam from checkpointed state, moments and step
    /// counter included.
    ///
    /// # Panics
    ///
    /// Panics when `learning_rate <= 0` or the moment vectors differ
    /// in length — checkpoint decoding validates both before calling.
    pub fn from_parts(
        learning_rate: f64,
        beta1: f64,
        beta2: f64,
        epsilon: f64,
        t: u64,
        m: Vec<f64>,
        v: Vec<f64>,
    ) -> Self {
        assert_eq!(m.len(), v.len(), "moment vectors must match in length");
        let mut adam = Adam::new(learning_rate);
        adam.beta1 = beta1;
        adam.beta2 = beta2;
        adam.epsilon = epsilon;
        adam.t = t;
        adam.m = m;
        adam.v = v;
        adam
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        if self.m.len() != params.len() {
            assert!(self.m.is_empty(), "parameter count changed");
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn reset(&mut self) {
        self.t = 0;
        self.m.clear();
        self.v.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)² from x = 0.
    fn minimize<O: Optimizer>(opt: &mut O, steps: usize) -> f64 {
        let mut x = vec![0.0f64];
        for _ in 0..steps {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!((minimize(&mut opt, 200) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        assert!((minimize(&mut opt, 400) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        assert!((minimize(&mut opt, 500) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_first_step_is_learning_rate_sized() {
        // With bias correction, the first Adam step ≈ lr * sign(g).
        let mut opt = Adam::new(0.01);
        let mut x = vec![0.0];
        opt.step(&mut x, &[123.0]);
        assert!((x[0] + 0.01).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Adam::new(0.1);
        let mut x = vec![0.0];
        opt.step(&mut x, &[1.0]);
        opt.reset();
        // After reset a different-size parameter vector is accepted.
        let mut y = vec![0.0, 0.0];
        opt.step(&mut y, &[1.0, 1.0]);
        assert!(y[0] < 0.0 && y[1] < 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        Sgd::new(0.1).step(&mut [0.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn changing_param_count_without_reset_panics() {
        let mut opt = Adam::new(0.1);
        let mut x = vec![0.0];
        opt.step(&mut x, &[1.0]);
        let mut y = vec![0.0, 0.0];
        opt.step(&mut y, &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn nonpositive_learning_rate_rejected() {
        Adam::new(0.0);
    }

    #[test]
    fn optimizers_are_object_safe() {
        let mut opts: Vec<Box<dyn Optimizer>> =
            vec![Box::new(Sgd::new(0.1)), Box::new(Adam::new(0.1))];
        let mut x = vec![1.0];
        for o in &mut opts {
            o.step(&mut x, &[0.5]);
        }
        assert!(x[0] < 1.0);
    }
}
