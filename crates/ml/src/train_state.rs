//! Crash-consistent snapshots of in-progress training runs.
//!
//! A [`TrainState`] captures everything a mini-batch training loop
//! needs to continue bitwise-identically after a crash: the flat
//! parameter vector, the full optimizer state (Adam moments and step
//! counter, SGD velocity), the weight-decay setting, the epoch/step
//! counters, and the raw shuffle-RNG state. The snapshot is valid
//! only at an epoch boundary — every loop in this crate draws from
//! the RNG exclusively through per-epoch shuffles, so the RNG words
//! alone determine the remaining mini-batch schedule.
//!
//! Loading is strict: [`TrainState::from_json`] and
//! [`TrainState::from_bytes`] reject non-finite numbers (the JSON
//! layer serializes NaN/∞ as `null`; the binary codec carries their
//! raw bits, which the same validation then refuses), degenerate RNG
//! state, and malformed optimizer payloads with a typed
//! [`TrainStateError`] instead of silently resuming from garbage.
//!
//! Two wire formats share that validation: JSON (legacy, shortest
//! round-trip decimals) and the `forumcast-store` binary codec
//! ([`TrainState::to_bytes`]), which packs the parameter and moment
//! vectors as contiguous little-endian doubles — bitwise-exact and
//! several times smaller than the decimal rendering.

use serde::{DeError, Deserialize, Serialize, Value};

use crate::optim::{Adam, Sgd};

/// Everything needed to resume one training loop at an epoch
/// boundary with bitwise-identical results.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrainState {
    /// Flat parameter vector (layout is owned by the training loop,
    /// e.g. `[weights..., bias]` for the GLMs, `Mlp::params` for the
    /// MLP trainer).
    pub params: Vec<f64>,
    /// Full optimizer state.
    pub optimizer: OptimizerState,
    /// L2 weight decay in force when the snapshot was taken.
    pub weight_decay: f64,
    /// Epochs completed; training resumes at this epoch index.
    pub epoch: u64,
    /// Optimizer steps applied (the `Trainer` cumulative step index,
    /// which also keys the `nan-grad` fault site).
    pub steps: u64,
    /// Raw xoshiro256++ state of the shuffle RNG at the boundary.
    pub rng: [u64; 4],
}

/// Serializable optimizer state, mirroring [`Adam`] / [`Sgd`]
/// including their private moment vectors.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum OptimizerState {
    /// Adam: hyperparameters plus step counter and both moments.
    Adam {
        /// Learning rate `α`.
        learning_rate: f64,
        /// First-moment decay `β₁`.
        beta1: f64,
        /// Second-moment decay `β₂`.
        beta2: f64,
        /// Numerical-stability constant `ε`.
        epsilon: f64,
        /// Bias-correction step counter.
        t: u64,
        /// First-moment vector.
        m: Vec<f64>,
        /// Second-moment vector.
        v: Vec<f64>,
    },
    /// SGD: hyperparameters plus the momentum velocity.
    Sgd {
        /// Learning rate.
        learning_rate: f64,
        /// Momentum coefficient.
        momentum: f64,
        /// Velocity vector.
        velocity: Vec<f64>,
    },
}

impl OptimizerState {
    /// Variant name, for mismatch errors.
    pub fn kind(&self) -> &'static str {
        match self {
            OptimizerState::Adam { .. } => "Adam",
            OptimizerState::Sgd { .. } => "Sgd",
        }
    }
}

/// Why a [`TrainState`] could not be loaded or applied.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrainStateError {
    /// Structurally malformed snapshot (bad JSON, missing field,
    /// wrong shape).
    Parse(String),
    /// A numeric field was NaN/∞ (serialized as `null`) — resuming
    /// from it would poison training.
    NonFinite {
        /// Which field held the non-finite value.
        field: &'static str,
        /// Index within the field (0 for scalars).
        index: usize,
    },
    /// The snapshot's optimizer variant does not match the loop's.
    OptimizerKind {
        /// Variant the training loop requires.
        expected: &'static str,
        /// Variant found in the snapshot.
        found: &'static str,
    },
    /// The snapshot's parameter vector has the wrong length for the
    /// model being resumed.
    ParamShape {
        /// Parameter count the model requires.
        expected: usize,
        /// Parameter count found in the snapshot.
        found: usize,
    },
    /// The all-zero RNG state — a fixed point of xoshiro256++ that no
    /// seeded run can reach; only a corrupted snapshot contains it.
    DegenerateRng,
}

impl std::fmt::Display for TrainStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainStateError::Parse(msg) => write!(f, "malformed train state: {msg}"),
            TrainStateError::NonFinite { field, index } => {
                write!(f, "non-finite value in train state `{field}[{index}]`")
            }
            TrainStateError::OptimizerKind { expected, found } => write!(
                f,
                "train state holds a {found} optimizer but the loop uses {expected}"
            ),
            TrainStateError::ParamShape { expected, found } => write!(
                f,
                "train state has {found} parameters but the model has {expected}"
            ),
            TrainStateError::DegenerateRng => {
                f.write_str("train state RNG is the degenerate all-zero xoshiro state")
            }
        }
    }
}

impl std::error::Error for TrainStateError {}

impl TrainState {
    /// Serializes the snapshot as JSON. Finite values round-trip
    /// bitwise (the JSON layer prints shortest-round-trip decimals).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("train state serializes")
    }

    /// Parses and validates a JSON snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`TrainStateError`] on malformed JSON, non-finite
    /// numbers, unknown optimizer variants, or degenerate RNG state.
    pub fn from_json(s: &str) -> Result<Self, TrainStateError> {
        let v: Value =
            serde_json::from_str(s).map_err(|e| TrainStateError::Parse(e.to_string()))?;
        decode_train_state(&v)
    }

    /// Serializes the snapshot with the store's binary codec. Every
    /// `f64` is stored as raw IEEE bits, so the round-trip is exact
    /// by construction; the flat parameter and moment vectors take
    /// the packed contiguous-doubles encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        forumcast_store::encode_value(&self.to_value())
    }

    /// Parses and validates a binary snapshot, applying exactly the
    /// same strictness as [`from_json`](Self::from_json): the codec
    /// can represent NaN/∞ faithfully, and this decoder still refuses
    /// to resume from them.
    ///
    /// # Errors
    ///
    /// Returns [`TrainStateError`] on malformed bytes, non-finite
    /// numbers, unknown optimizer variants, or degenerate RNG state.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TrainStateError> {
        let v = forumcast_store::decode_value(bytes)
            .map_err(|e| TrainStateError::Parse(e.to_string()))?;
        decode_train_state(&v)
    }
}

impl Deserialize for TrainState {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        decode_train_state(v).map_err(|e| DeError::custom(e.to_string()))
    }
}

impl Deserialize for OptimizerState {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        decode_optimizer(v).map_err(|e| DeError::custom(e.to_string()))
    }
}

/// Snapshot/restore support for optimizers: renders the full state
/// (including private moments) and rebuilds the optimizer from it.
pub trait SnapshotOptimizer: Sized {
    /// Captures the complete optimizer state.
    fn to_state(&self) -> OptimizerState;

    /// Rebuilds the optimizer from a captured state.
    ///
    /// # Errors
    ///
    /// Returns [`TrainStateError::OptimizerKind`] when `state` holds a
    /// different optimizer variant.
    fn from_state(state: &OptimizerState) -> Result<Self, TrainStateError>;
}

impl SnapshotOptimizer for Adam {
    fn to_state(&self) -> OptimizerState {
        let (m, v) = self.moments();
        OptimizerState::Adam {
            learning_rate: self.learning_rate,
            beta1: self.beta1,
            beta2: self.beta2,
            epsilon: self.epsilon,
            t: self.steps(),
            m: m.to_vec(),
            v: v.to_vec(),
        }
    }

    fn from_state(state: &OptimizerState) -> Result<Self, TrainStateError> {
        match state {
            OptimizerState::Adam {
                learning_rate,
                beta1,
                beta2,
                epsilon,
                t,
                m,
                v,
            } => Ok(Adam::from_parts(
                *learning_rate,
                *beta1,
                *beta2,
                *epsilon,
                *t,
                m.clone(),
                v.clone(),
            )),
            other => Err(TrainStateError::OptimizerKind {
                expected: "Adam",
                found: other.kind(),
            }),
        }
    }
}

impl SnapshotOptimizer for Sgd {
    fn to_state(&self) -> OptimizerState {
        OptimizerState::Sgd {
            learning_rate: self.learning_rate,
            momentum: self.momentum,
            velocity: self.velocity().to_vec(),
        }
    }

    fn from_state(state: &OptimizerState) -> Result<Self, TrainStateError> {
        match state {
            OptimizerState::Sgd {
                learning_rate,
                momentum,
                velocity,
            } => Ok(Sgd::from_parts(*learning_rate, *momentum, velocity.clone())),
            other => Err(TrainStateError::OptimizerKind {
                expected: "Sgd",
                found: other.kind(),
            }),
        }
    }
}

/// Builds a GLM epoch-boundary snapshot (`weight_decay` carries the
/// L2 strength, `steps` the Adam counter). Shared by the logistic and
/// Poisson `fit_resumable` loops.
pub(crate) fn glm_snapshot(
    params: &[f64],
    opt: &Adam,
    l2: f64,
    epoch: usize,
    rng: &rand::rngs::StdRng,
) -> TrainState {
    TrainState {
        params: params.to_vec(),
        optimizer: opt.to_state(),
        weight_decay: l2,
        epoch: epoch as u64,
        steps: opt.steps(),
        rng: rng.state(),
    }
}

/// Restores a GLM snapshot into the flat parameter vector, optimizer,
/// and shuffle RNG.
pub(crate) fn restore_glm(
    state: &TrainState,
    params: &mut Vec<f64>,
    opt: &mut Adam,
    rng: &mut rand::rngs::StdRng,
) -> Result<(), TrainStateError> {
    if state.params.len() != params.len() {
        return Err(TrainStateError::ParamShape {
            expected: params.len(),
            found: state.params.len(),
        });
    }
    if state.rng == [0; 4] {
        return Err(TrainStateError::DegenerateRng);
    }
    *opt = Adam::from_state(&state.optimizer)?;
    params.clear();
    params.extend_from_slice(&state.params);
    *rng = rand::rngs::StdRng::from_state(state.rng);
    Ok(())
}

// --- strict decoding ----------------------------------------------
//
// Hand-written instead of derived for two reasons: the serde shim has
// no `Deserialize for [u64; 4]`, and every number must be checked for
// finiteness here — NaN/∞ serialize as JSON `null`, which a lenient
// decoder would otherwise surface as an untyped shape error.

fn field<'a>(
    fields: &'a [(String, Value)],
    name: &str,
    ty: &str,
) -> Result<&'a Value, TrainStateError> {
    serde::obj_get(fields, name)
        .ok_or_else(|| TrainStateError::Parse(format!("missing field `{name}` in `{ty}`")))
}

fn decode_finite(v: &Value, name: &'static str, index: usize) -> Result<f64, TrainStateError> {
    match v {
        Value::I64(n) => Ok(*n as f64),
        Value::U64(n) => Ok(*n as f64),
        Value::F64(x) if x.is_finite() => Ok(*x),
        // `null` is how the JSON layer spells NaN/∞.
        Value::F64(_) | Value::Null => Err(TrainStateError::NonFinite { field: name, index }),
        other => Err(TrainStateError::Parse(format!(
            "expected number for `{name}`, found {}",
            serde::kind(other)
        ))),
    }
}

fn decode_finite_vec(v: &Value, name: &'static str) -> Result<Vec<f64>, TrainStateError> {
    match v {
        Value::Array(items) => items
            .iter()
            .enumerate()
            .map(|(i, item)| decode_finite(item, name, i))
            .collect(),
        other => Err(TrainStateError::Parse(format!(
            "expected array for `{name}`, found {}",
            serde::kind(other)
        ))),
    }
}

fn decode_u64(v: &Value, name: &str) -> Result<u64, TrainStateError> {
    u64::from_value(v).map_err(|e| TrainStateError::Parse(format!("field `{name}`: {e}")))
}

fn decode_optimizer(v: &Value) -> Result<OptimizerState, TrainStateError> {
    let (tag, payload) = serde::enum_parts(v, "OptimizerState")
        .map_err(|e| TrainStateError::Parse(e.to_string()))?;
    let payload = payload
        .ok_or_else(|| TrainStateError::Parse(format!("optimizer `{tag}` has no payload")))?;
    let fields = serde::expect_object(payload, "OptimizerState")
        .map_err(|e| TrainStateError::Parse(e.to_string()))?;
    match tag {
        "Adam" => {
            let learning_rate =
                decode_finite(field(fields, "learning_rate", "Adam")?, "learning_rate", 0)?;
            let beta1 = decode_finite(field(fields, "beta1", "Adam")?, "beta1", 0)?;
            let beta2 = decode_finite(field(fields, "beta2", "Adam")?, "beta2", 0)?;
            let epsilon = decode_finite(field(fields, "epsilon", "Adam")?, "epsilon", 0)?;
            let t = decode_u64(field(fields, "t", "Adam")?, "t")?;
            let m = decode_finite_vec(field(fields, "m", "Adam")?, "m")?;
            let v = decode_finite_vec(field(fields, "v", "Adam")?, "v")?;
            if learning_rate <= 0.0 {
                return Err(TrainStateError::Parse(
                    "Adam learning rate must be positive".into(),
                ));
            }
            if m.len() != v.len() {
                return Err(TrainStateError::Parse(format!(
                    "Adam moment lengths differ: m={} v={}",
                    m.len(),
                    v.len()
                )));
            }
            Ok(OptimizerState::Adam {
                learning_rate,
                beta1,
                beta2,
                epsilon,
                t,
                m,
                v,
            })
        }
        "Sgd" => {
            let learning_rate =
                decode_finite(field(fields, "learning_rate", "Sgd")?, "learning_rate", 0)?;
            let momentum = decode_finite(field(fields, "momentum", "Sgd")?, "momentum", 0)?;
            let velocity = decode_finite_vec(field(fields, "velocity", "Sgd")?, "velocity")?;
            if learning_rate <= 0.0 {
                return Err(TrainStateError::Parse(
                    "SGD learning rate must be positive".into(),
                ));
            }
            Ok(OptimizerState::Sgd {
                learning_rate,
                momentum,
                velocity,
            })
        }
        other => Err(TrainStateError::Parse(format!(
            "unknown optimizer variant `{other}`"
        ))),
    }
}

fn decode_train_state(v: &Value) -> Result<TrainState, TrainStateError> {
    let fields =
        serde::expect_object(v, "TrainState").map_err(|e| TrainStateError::Parse(e.to_string()))?;
    let params = decode_finite_vec(field(fields, "params", "TrainState")?, "params")?;
    let optimizer = decode_optimizer(field(fields, "optimizer", "TrainState")?)?;
    let weight_decay = decode_finite(
        field(fields, "weight_decay", "TrainState")?,
        "weight_decay",
        0,
    )?;
    let epoch = decode_u64(field(fields, "epoch", "TrainState")?, "epoch")?;
    let steps = decode_u64(field(fields, "steps", "TrainState")?, "steps")?;
    let rng_field = field(fields, "rng", "TrainState")?;
    let words = serde::expect_tuple(rng_field, 4, "TrainState.rng")
        .map_err(|e| TrainStateError::Parse(e.to_string()))?;
    let mut rng = [0u64; 4];
    for (slot, word) in rng.iter_mut().zip(words) {
        *slot = decode_u64(word, "rng")?;
    }
    if rng == [0; 4] {
        return Err(TrainStateError::DegenerateRng);
    }
    Ok(TrainState {
        params,
        optimizer,
        weight_decay,
        epoch,
        steps,
        rng,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Optimizer;

    fn adam_state() -> TrainState {
        let mut opt = Adam::new(0.01);
        let mut params = vec![0.5, -0.25, 1.0];
        opt.step(&mut params, &[0.1, -0.2, 0.3]);
        opt.step(&mut params, &[0.05, 0.0, -0.1]);
        TrainState {
            params,
            optimizer: opt.to_state(),
            weight_decay: 1e-3,
            epoch: 7,
            steps: 2,
            rng: [1, 2, 3, 4],
        }
    }

    #[test]
    fn json_roundtrip_is_bitwise() {
        let state = adam_state();
        let back = TrainState::from_json(&state.to_json()).unwrap();
        assert_eq!(back, state);
        for (a, b) in state.params.iter().zip(&back.params) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn adam_restores_bitwise_identical_trajectory() {
        let mut opt = Adam::new(0.05);
        let mut params = vec![1.0, -1.0];
        opt.step(&mut params, &[0.3, -0.4]);
        let state = opt.to_state();
        let mut restored = Adam::from_state(&state).unwrap();
        for g in [[0.1, 0.2], [-0.3, 0.05], [0.0, 0.9]] {
            let mut a = params.clone();
            let mut b = params.clone();
            opt.step(&mut a, &g);
            restored.step(&mut b, &g);
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            params = a;
        }
    }

    #[test]
    fn binary_roundtrip_is_bitwise_including_subnormals() {
        let mut state = adam_state();
        state.params.push(f64::MIN_POSITIVE); // smallest subnormal-adjacent
        state.params.push(-0.0);
        state.params.push(5e-324); // smallest subnormal
        let back = TrainState::from_bytes(&state.to_bytes()).unwrap();
        assert_eq!(back, state);
        for (a, b) in state.params.iter().zip(&back.params) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Canonical encoding: re-encoding the decoded state is
        // byte-identical.
        assert_eq!(back.to_bytes(), state.to_bytes());
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let mut state = adam_state();
        state.params = (0..512).map(|i| (i as f64).sin()).collect();
        assert!(state.to_bytes().len() < state.to_json().len() / 2);
    }

    #[test]
    fn binary_nan_rejected_even_though_representable() {
        let mut state = adam_state();
        state.params[0] = f64::NAN;
        // The binary codec carries the NaN bits faithfully …
        let bytes = state.to_bytes();
        // … and the validating decoder still refuses them.
        match TrainState::from_bytes(&bytes) {
            Err(TrainStateError::NonFinite { field, index }) => {
                assert_eq!(field, "params");
                assert_eq!(index, 0);
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_of_binary_state_is_a_typed_error() {
        let bytes = adam_state().to_bytes();
        for cut in 0..bytes.len() {
            match TrainState::from_bytes(&bytes[..cut]) {
                Err(_) => {}
                Ok(s) => panic!("truncation at {cut} decoded silently to {s:?}"),
            }
        }
    }

    #[test]
    fn nan_params_rejected_with_typed_error() {
        let mut state = adam_state();
        state.params[1] = f64::NAN;
        match TrainState::from_json(&state.to_json()) {
            Err(TrainStateError::NonFinite { field, index }) => {
                assert_eq!(field, "params");
                assert_eq!(index, 1);
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn infinite_moment_rejected_with_typed_error() {
        let mut state = adam_state();
        if let OptimizerState::Adam { v, .. } = &mut state.optimizer {
            v[0] = f64::INFINITY;
        }
        match TrainState::from_json(&state.to_json()) {
            Err(TrainStateError::NonFinite { field, index }) => {
                assert_eq!(field, "v");
                assert_eq!(index, 0);
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_rng_rejected() {
        let mut state = adam_state();
        state.rng = [0; 4];
        assert_eq!(
            TrainState::from_json(&state.to_json()),
            Err(TrainStateError::DegenerateRng)
        );
    }

    #[test]
    fn optimizer_kind_mismatch_is_typed() {
        let sgd = Sgd::new(0.1).with_momentum(0.5);
        let err = Adam::from_state(&sgd.to_state()).unwrap_err();
        assert_eq!(
            err,
            TrainStateError::OptimizerKind {
                expected: "Adam",
                found: "Sgd"
            }
        );
        assert!(err.to_string().contains("Sgd"));
    }

    #[test]
    fn truncated_json_is_a_parse_error() {
        let json = adam_state().to_json();
        let cut = &json[..json.len() / 2];
        assert!(matches!(
            TrainState::from_json(cut),
            Err(TrainStateError::Parse(_))
        ));
    }

    #[test]
    fn sgd_velocity_roundtrips() {
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        let mut params = vec![0.0, 0.0];
        opt.step(&mut params, &[1.0, -1.0]);
        let state = TrainState {
            params,
            optimizer: opt.to_state(),
            weight_decay: 0.0,
            epoch: 1,
            steps: 1,
            rng: [9, 9, 9, 9],
        };
        let back = TrainState::from_json(&state.to_json()).unwrap();
        assert_eq!(back, state);
        let restored = Sgd::from_state(&back.optimizer).unwrap();
        assert_eq!(
            restored.velocity(),
            Sgd::from_state(&state.optimizer).unwrap().velocity()
        );
    }
}
