//! Fully-connected neural networks with reverse-mode gradients.
//!
//! Parameters are stored in one flat `Vec<f64>` (per layer: weight
//! matrix row-major `[outputs × inputs]`, then bias `[outputs]`), so
//! optimizers ([`crate::optim`]) can treat the whole network as a
//! single parameter vector. [`Mlp::backward`] accepts an arbitrary
//! gradient of the loss with respect to the network *output*, which is
//! what lets `forumcast-core` train the point-process likelihood —
//! a loss TensorFlow normally autodiffs for the paper's authors.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;

/// Shape and nonlinearity of one dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Input dimension.
    pub inputs: usize,
    /// Output dimension (number of hidden units).
    pub outputs: usize,
    /// Layer nonlinearity.
    pub activation: Activation,
}

impl LayerSpec {
    /// Creates a layer spec.
    ///
    /// # Panics
    ///
    /// Panics when `inputs` or `outputs` is zero.
    pub fn new(inputs: usize, outputs: usize, activation: Activation) -> Self {
        assert!(
            inputs > 0 && outputs > 0,
            "layer dimensions must be positive"
        );
        LayerSpec {
            inputs,
            outputs,
            activation,
        }
    }

    /// Number of parameters (weights + biases) in this layer.
    pub fn num_params(&self) -> usize {
        self.outputs * self.inputs + self.outputs
    }
}

/// Cached activations from [`Mlp::forward_cache`], consumed by
/// [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// `activations[0]` is the input; `activations[l + 1]` is the
    /// output of layer `l`.
    activations: Vec<Vec<f64>>,
}

impl ForwardCache {
    /// The network output for this cached pass.
    pub fn output(&self) -> &[f64] {
        self.activations.last().expect("cache has at least input")
    }
}

/// Reusable flat buffers for [`Mlp::forward_scratch`] /
/// [`Mlp::backward_scratch`] — the allocation-free twin of
/// [`ForwardCache`], following the graph crate's `BfsScratch`
/// discipline: lazily sized on first use, resized only when the
/// network shape changes, reused (with a [`reuses`](Self::reuses)
/// count) otherwise. One scratch serves one network shape at a time;
/// a forward pass overwrites every cell it reads, so no clearing is
/// needed between passes.
#[derive(Debug, Default)]
pub struct MlpScratch {
    /// Flat activations: the input segment followed by one segment per
    /// layer output, at [`Self::offsets`].
    acts: Vec<f64>,
    /// Start offset of segment `l` in `acts` (`layers + 1` entries,
    /// the last being the output segment).
    offsets: Vec<usize>,
    /// δ ping-pong buffers for the backward pass, sized to the widest
    /// layer interface.
    delta: Vec<f64>,
    delta_next: Vec<f64>,
    /// `(inputs, outputs)` per layer of the network the buffers are
    /// currently sized for.
    shape: Vec<(usize, usize)>,
    /// Times `prepare` found the buffers already sized.
    reuses: u64,
}

impl MlpScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        MlpScratch::default()
    }

    /// How many forward passes reused the buffers without resizing.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Sizes the buffers for `mlp`, counting a reuse when they already
    /// fit.
    fn prepare(&mut self, mlp: &Mlp) {
        let fits = self.shape.len() == mlp.specs.len()
            && self
                .shape
                .iter()
                .zip(&mlp.specs)
                .all(|(&(i, o), s)| i == s.inputs && o == s.outputs);
        if fits {
            self.reuses += 1;
            return;
        }
        self.shape.clear();
        self.shape
            .extend(mlp.specs.iter().map(|s| (s.inputs, s.outputs)));
        self.offsets.clear();
        self.offsets.push(0);
        let mut total = mlp.specs[0].inputs;
        let mut max_width = mlp.specs[0].inputs;
        for spec in &mlp.specs {
            self.offsets.push(total);
            total += spec.outputs;
            max_width = max_width.max(spec.outputs);
        }
        self.acts.resize(total, 0.0);
        self.delta.resize(max_width, 0.0);
        self.delta_next.resize(max_width, 0.0);
    }

    /// Panics unless the scratch holds a pass for `mlp`'s shape.
    fn assert_prepared(&self, mlp: &Mlp) {
        assert!(
            self.shape.len() == mlp.specs.len()
                && self
                    .shape
                    .iter()
                    .zip(&mlp.specs)
                    .all(|(&(i, o), s)| i == s.inputs && o == s.outputs),
            "scratch holds no forward pass for this network shape"
        );
    }
}

/// A fully-connected feed-forward network.
///
/// # Example
///
/// ```
/// use forumcast_ml::{Activation, LayerSpec, Mlp};
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(0);
/// let mlp = Mlp::new(
///     &[LayerSpec::new(3, 4, Activation::Relu), LayerSpec::new(4, 1, Activation::Identity)],
///     &mut rng,
/// );
/// assert_eq!(mlp.forward(&[0.0, 1.0, -1.0]).len(), 1);
/// assert_eq!(mlp.num_params(), 3 * 4 + 4 + 4 + 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    specs: Vec<LayerSpec>,
    params: Vec<f64>,
}

impl Mlp {
    /// Creates a network with Xavier/Glorot-uniform initial weights
    /// and zero biases.
    ///
    /// # Panics
    ///
    /// Panics when `specs` is empty or consecutive layer dimensions
    /// disagree.
    pub fn new<R: Rng + ?Sized>(specs: &[LayerSpec], rng: &mut R) -> Self {
        assert!(!specs.is_empty(), "network needs at least one layer");
        for w in specs.windows(2) {
            assert_eq!(
                w[0].outputs, w[1].inputs,
                "layer dimensions disagree: {} -> {}",
                w[0].outputs, w[1].inputs
            );
        }
        let total: usize = specs.iter().map(LayerSpec::num_params).sum();
        let mut params = vec![0.0; total];
        let mut offset = 0;
        for spec in specs {
            let bound = (6.0 / (spec.inputs + spec.outputs) as f64).sqrt();
            let n_w = spec.outputs * spec.inputs;
            for p in &mut params[offset..offset + n_w] {
                *p = rng.gen_range(-bound..bound);
            }
            offset += spec.num_params();
        }
        Mlp {
            specs: specs.to_vec(),
            params,
        }
    }

    /// Input dimension of the network.
    pub fn input_dim(&self) -> usize {
        self.specs[0].inputs
    }

    /// Output dimension of the network.
    pub fn output_dim(&self) -> usize {
        self.specs.last().expect("non-empty").outputs
    }

    /// Layer specifications.
    pub fn specs(&self) -> &[LayerSpec] {
        &self.specs
    }

    /// Total number of parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// The flat parameter vector.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Mutable access to the flat parameter vector (for optimizers).
    pub fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    /// Runs the network on `x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != input_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.forward_cache(x).activations.pop().expect("output")
    }

    /// Runs the network, caching every layer's activations for a
    /// later [`backward`](Mlp::backward) pass.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != input_dim()`.
    pub fn forward_cache(&self, x: &[f64]) -> ForwardCache {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        let mut activations = Vec::with_capacity(self.specs.len() + 1);
        activations.push(x.to_vec());
        let mut offset = 0;
        for spec in &self.specs {
            let input = activations.last().expect("non-empty");
            let w = &self.params[offset..offset + spec.outputs * spec.inputs];
            let b = &self.params[offset + spec.outputs * spec.inputs..offset + spec.num_params()];
            let mut out = vec![0.0; spec.outputs];
            crate::linalg::gemv(w, spec.outputs, spec.inputs, input, b, &mut out);
            for y in &mut out {
                *y = spec.activation.apply(*y);
            }
            offset += spec.num_params();
            activations.push(out);
        }
        ForwardCache { activations }
    }

    /// [`Self::forward_cache`] without allocations: runs the network
    /// on `x`, storing every layer's activations in `scratch`, and
    /// returns the output slice. Bitwise-identical to
    /// [`Self::forward_cache`] — both reduce through the same
    /// [`crate::linalg`] kernels.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != input_dim()`.
    pub fn forward_scratch<'s>(&self, x: &[f64], scratch: &'s mut MlpScratch) -> &'s [f64] {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        scratch.prepare(self);
        scratch.acts[..x.len()].copy_from_slice(x);
        let mut offset = 0;
        for (l, spec) in self.specs.iter().enumerate() {
            let w = &self.params[offset..offset + spec.outputs * spec.inputs];
            let b = &self.params[offset + spec.outputs * spec.inputs..offset + spec.num_params()];
            // The output segment starts where the input segment ends,
            // so one split yields both without aliasing.
            let (head, tail) = scratch.acts.split_at_mut(scratch.offsets[l + 1]);
            let input = &head[scratch.offsets[l]..scratch.offsets[l] + spec.inputs];
            let out = &mut tail[..spec.outputs];
            crate::linalg::gemv(w, spec.outputs, spec.inputs, input, b, out);
            for y in out.iter_mut() {
                *y = spec.activation.apply(*y);
            }
            offset += spec.num_params();
        }
        let last = scratch.offsets[self.specs.len()];
        &scratch.acts[last..last + self.output_dim()]
    }

    /// Backpropagates `grad_output = ∂L/∂y` through the cached pass,
    /// **accumulating** parameter gradients into `grads` (which must
    /// have length [`num_params`](Mlp::num_params)) and returning
    /// `∂L/∂x`.
    ///
    /// Accumulation (rather than overwrite) lets callers sum gradients
    /// over a mini-batch or over the several likelihood terms of the
    /// point-process loss before one optimizer step.
    ///
    /// # Panics
    ///
    /// Panics when `grads` or `grad_output` has the wrong length.
    pub fn backward(
        &self,
        cache: &ForwardCache,
        grad_output: &[f64],
        grads: &mut [f64],
    ) -> Vec<f64> {
        assert_eq!(grads.len(), self.params.len(), "grads length mismatch");
        assert_eq!(
            grad_output.len(),
            self.output_dim(),
            "grad_output dimension mismatch"
        );
        let mut grad = grad_output.to_vec();
        let mut offset = self.params.len();
        for (l, spec) in self.specs.iter().enumerate().rev() {
            offset -= spec.num_params();
            let input = &cache.activations[l];
            let output = &cache.activations[l + 1];
            // δ = ∂L/∂z = ∂L/∂y ⊙ σ'(z), with σ' from the output.
            let delta: Vec<f64> = grad
                .iter()
                .zip(output)
                .map(|(&g, &y)| g * spec.activation.derivative_from_output(y))
                .collect();
            let w = &self.params[offset..offset + spec.outputs * spec.inputs];
            let (gw, gb) =
                grads[offset..offset + spec.num_params()].split_at_mut(spec.outputs * spec.inputs);
            crate::linalg::axpy(1.0, &delta, gb);
            crate::linalg::rank1_accum(gw, spec.outputs, spec.inputs, &delta, input);
            let mut grad_in = vec![0.0; spec.inputs];
            crate::linalg::gemv_t_accum(w, spec.outputs, spec.inputs, &delta, &mut grad_in);
            grad = grad_in;
        }
        grad
    }

    /// [`Self::backward`] without allocations: backpropagates
    /// `grad_output` through the pass most recently recorded in
    /// `scratch` by [`Self::forward_scratch`], **accumulating** into
    /// `grads`. Produces bitwise-identical gradient accumulation to
    /// [`Self::backward`] (same kernels, same order); the input
    /// gradient is not materialized — callers that need `∂L/∂x` use
    /// the cache-based API.
    ///
    /// # Panics
    ///
    /// Panics when `grads` or `grad_output` has the wrong length, or
    /// when `scratch` holds no pass for this network's shape.
    pub fn backward_scratch(
        &self,
        scratch: &mut MlpScratch,
        grad_output: &[f64],
        grads: &mut [f64],
    ) {
        assert_eq!(grads.len(), self.params.len(), "grads length mismatch");
        assert_eq!(
            grad_output.len(),
            self.output_dim(),
            "grad_output dimension mismatch"
        );
        scratch.assert_prepared(self);
        scratch.delta[..grad_output.len()].copy_from_slice(grad_output);
        let mut offset = self.params.len();
        for (l, spec) in self.specs.iter().enumerate().rev() {
            offset -= spec.num_params();
            let input = &scratch.acts[scratch.offsets[l]..scratch.offsets[l] + spec.inputs];
            let output =
                &scratch.acts[scratch.offsets[l + 1]..scratch.offsets[l + 1] + spec.outputs];
            // δ = ∂L/∂z = ∂L/∂y ⊙ σ'(z), with σ' from the output.
            for (d, &y) in scratch.delta[..spec.outputs].iter_mut().zip(output) {
                *d *= spec.activation.derivative_from_output(y);
            }
            let delta = &scratch.delta[..spec.outputs];
            let w = &self.params[offset..offset + spec.outputs * spec.inputs];
            let (gw, gb) =
                grads[offset..offset + spec.num_params()].split_at_mut(spec.outputs * spec.inputs);
            crate::linalg::axpy(1.0, delta, gb);
            crate::linalg::rank1_accum(gw, spec.outputs, spec.inputs, delta, input);
            if l > 0 {
                let grad_in = &mut scratch.delta_next[..spec.inputs];
                grad_in.fill(0.0);
                crate::linalg::gemv_t_accum(w, spec.outputs, spec.inputs, delta, grad_in);
                std::mem::swap(&mut scratch.delta, &mut scratch.delta_next);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net(rng: &mut StdRng) -> Mlp {
        Mlp::new(
            &[
                LayerSpec::new(2, 3, Activation::Tanh),
                LayerSpec::new(3, 2, Activation::Sigmoid),
                LayerSpec::new(2, 1, Activation::Identity),
            ],
            rng,
        )
    }

    #[test]
    fn forward_dimensions_and_determinism() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = small_net(&mut rng);
        let y1 = mlp.forward(&[0.5, -0.5]);
        let y2 = mlp.forward(&[0.5, -0.5]);
        assert_eq!(y1.len(), 1);
        assert_eq!(y1, y2);
    }

    #[test]
    fn same_seed_same_network() {
        let m1 = small_net(&mut StdRng::seed_from_u64(9));
        let m2 = small_net(&mut StdRng::seed_from_u64(9));
        assert_eq!(m1.params(), m2.params());
    }

    #[test]
    fn num_params_matches_layout() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = small_net(&mut rng);
        assert_eq!(mlp.num_params(), (2 * 3 + 3) + (3 * 2 + 2) + (2 + 1));
    }

    #[test]
    #[should_panic(expected = "dimensions disagree")]
    fn mismatched_layers_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        Mlp::new(
            &[
                LayerSpec::new(2, 3, Activation::Relu),
                LayerSpec::new(4, 1, Activation::Identity),
            ],
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn wrong_input_dim_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        small_net(&mut rng).forward(&[1.0]);
    }

    /// Central finite-difference check of both parameter and input
    /// gradients, for a scalar loss L = Σ y_i².
    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut mlp = Mlp::new(
            &[
                LayerSpec::new(3, 4, Activation::Tanh),
                LayerSpec::new(4, 2, Activation::Softplus),
            ],
            &mut rng,
        );
        let x = vec![0.3, -0.7, 1.1];
        let loss = |m: &Mlp, x: &[f64]| -> f64 { m.forward(x).iter().map(|y| y * y).sum() };

        let cache = mlp.forward_cache(&x);
        let grad_out: Vec<f64> = cache.output().iter().map(|&y| 2.0 * y).collect();
        let mut grads = vec![0.0; mlp.num_params()];
        let grad_in = mlp.backward(&cache, &grad_out, &mut grads);

        let eps = 1e-6;
        #[allow(clippy::needless_range_loop)] // params are mutated per index below
        for i in 0..mlp.num_params() {
            let orig = mlp.params()[i];
            mlp.params_mut()[i] = orig + eps;
            let lp = loss(&mlp, &x);
            mlp.params_mut()[i] = orig - eps;
            let lm = loss(&mlp, &x);
            mlp.params_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grads[i]).abs() < 1e-5,
                "param {i}: numeric {numeric} vs analytic {}",
                grads[i]
            );
        }
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let numeric = (loss(&mlp, &xp) - loss(&mlp, &xm)) / (2.0 * eps);
            assert!(
                (numeric - grad_in[i]).abs() < 1e-5,
                "input {i}: numeric {numeric} vs analytic {}",
                grad_in[i]
            );
        }
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mut rng = StdRng::seed_from_u64(5);
        let mlp = small_net(&mut rng);
        let x = [0.2, 0.8];
        let cache = mlp.forward_cache(&x);
        let go = vec![1.0];
        let mut g1 = vec![0.0; mlp.num_params()];
        mlp.backward(&cache, &go, &mut g1);
        let mut g2 = vec![0.0; mlp.num_params()];
        mlp.backward(&cache, &go, &mut g2);
        mlp.backward(&cache, &go, &mut g2);
        for (a, b) in g1.iter().zip(&g2) {
            assert!((2.0 * a - b).abs() < 1e-12);
        }
    }

    const ALL_ACTIVATIONS: [Activation; 5] = [
        Activation::Relu,
        Activation::Tanh,
        Activation::Sigmoid,
        Activation::Softplus,
        Activation::Identity,
    ];

    #[test]
    fn scratch_pass_matches_cache_pass_bitwise_for_all_activations() {
        let mut scratch = MlpScratch::new();
        for (k, act) in ALL_ACTIVATIONS.into_iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(100 + k as u64);
            let mlp = Mlp::new(
                &[
                    LayerSpec::new(3, 5, act),
                    LayerSpec::new(5, 4, act),
                    LayerSpec::new(4, 2, Activation::Identity),
                ],
                &mut rng,
            );
            let x = [0.4, -0.9, 1.3];
            let cache = mlp.forward_cache(&x);
            let out = mlp.forward_scratch(&x, &mut scratch);
            assert_eq!(out.len(), 2);
            for (a, b) in out.iter().zip(cache.output()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{act:?} forward");
            }
            let go = [0.7, -1.2];
            let mut g_cache = vec![0.0; mlp.num_params()];
            mlp.backward(&cache, &go, &mut g_cache);
            let mut g_scratch = vec![0.0; mlp.num_params()];
            mlp.backward_scratch(&mut scratch, &go, &mut g_scratch);
            for (i, (a, b)) in g_scratch.iter().zip(&g_cache).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{act:?} grad {i}");
            }
        }
    }

    /// Finite-difference check of the scratch kernels for every
    /// activation, with loss L = Σ y_i².
    #[test]
    fn backward_scratch_matches_finite_differences_for_all_activations() {
        for (k, act) in ALL_ACTIVATIONS.into_iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(40 + k as u64);
            let mut mlp = Mlp::new(
                &[
                    LayerSpec::new(3, 6, act),
                    LayerSpec::new(6, 2, Activation::Identity),
                ],
                &mut rng,
            );
            let x = vec![0.35, -0.65, 1.05];
            let loss = |m: &Mlp, x: &[f64]| -> f64 { m.forward(x).iter().map(|y| y * y).sum() };
            let mut scratch = MlpScratch::new();
            let grad_out: Vec<f64> = mlp
                .forward_scratch(&x, &mut scratch)
                .iter()
                .map(|&y| 2.0 * y)
                .collect();
            let mut grads = vec![0.0; mlp.num_params()];
            mlp.backward_scratch(&mut scratch, &grad_out, &mut grads);
            let eps = 1e-6;
            #[allow(clippy::needless_range_loop)] // params are mutated per index below
            for i in 0..mlp.num_params() {
                let orig = mlp.params()[i];
                mlp.params_mut()[i] = orig + eps;
                let lp = loss(&mlp, &x);
                mlp.params_mut()[i] = orig - eps;
                let lm = loss(&mlp, &x);
                mlp.params_mut()[i] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - grads[i]).abs() < 1e-5,
                    "{act:?} param {i}: numeric {numeric} vs analytic {}",
                    grads[i]
                );
            }
        }
    }

    #[test]
    fn backward_scratch_accumulates_across_calls() {
        let mut rng = StdRng::seed_from_u64(5);
        let mlp = small_net(&mut rng);
        let x = [0.2, 0.8];
        let mut scratch = MlpScratch::new();
        mlp.forward_scratch(&x, &mut scratch);
        let go = [1.0];
        let mut g1 = vec![0.0; mlp.num_params()];
        mlp.backward_scratch(&mut scratch, &go, &mut g1);
        let mut g2 = vec![0.0; mlp.num_params()];
        mlp.backward_scratch(&mut scratch, &go, &mut g2);
        mlp.backward_scratch(&mut scratch, &go, &mut g2);
        for (a, b) in g1.iter().zip(&g2) {
            assert!((2.0 * a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn scratch_reuses_buffers_and_resizes_across_shapes() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = small_net(&mut rng);
        let b = Mlp::new(&[LayerSpec::new(4, 2, Activation::Relu)], &mut rng);
        let mut scratch = MlpScratch::new();
        a.forward_scratch(&[0.1, 0.2], &mut scratch);
        assert_eq!(scratch.reuses(), 0);
        a.forward_scratch(&[0.3, 0.4], &mut scratch);
        a.forward_scratch(&[0.5, 0.6], &mut scratch);
        assert_eq!(scratch.reuses(), 2);
        // A different shape re-sizes instead of reusing.
        b.forward_scratch(&[0.0, 0.0, 0.0, 0.0], &mut scratch);
        assert_eq!(scratch.reuses(), 2);
        b.forward_scratch(&[1.0, 0.0, 0.0, 0.0], &mut scratch);
        assert_eq!(scratch.reuses(), 3);
    }

    #[test]
    #[should_panic(expected = "no forward pass")]
    fn backward_scratch_without_forward_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let mlp = small_net(&mut rng);
        let mut scratch = MlpScratch::new();
        let mut grads = vec![0.0; mlp.num_params()];
        mlp.backward_scratch(&mut scratch, &[1.0], &mut grads);
    }

    #[test]
    fn serde_roundtrip_preserves_outputs() {
        let mut rng = StdRng::seed_from_u64(8);
        let mlp = small_net(&mut rng);
        let json = serde_json::to_string(&mlp).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        assert_eq!(back.forward(&[0.1, 0.9]), mlp.forward(&[0.1, 0.9]));
    }
}
