//! Biased matrix factorization — the paper's baseline for net-vote
//! prediction (`v̂`, Section IV-A(ii), citing Koren 2008).

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::linalg::dot;

/// Hyperparameters for [`MatrixFactorization`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MfConfig {
    /// Latent dimension (the paper uses 5 for MF).
    pub latent_dim: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularization on factors and biases.
    pub l2: f64,
    /// Training epochs.
    pub epochs: usize,
}

impl Default for MfConfig {
    fn default() -> Self {
        MfConfig {
            latent_dim: 5,
            learning_rate: 0.01,
            l2: 0.05,
            epochs: 60,
        }
    }
}

/// Biased matrix factorization
/// `v̂_{u,q} = μ + b_u + b_q + p_uᵀ q_q`
/// trained by SGD on observed `(user, item, value)` triplets.
///
/// Learns **only from indices** — no content features — which is
/// exactly what makes it the paper's foil for the feature-based
/// models: "the fact that SPARFA and MF learn over user `u` and
/// question `q` indices allows us to evaluate the quality of our
/// features".
///
/// # Example
///
/// ```
/// use forumcast_ml::{MatrixFactorization, MfConfig};
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(0);
/// let triplets = vec![(0, 0, 5.0), (0, 1, 1.0), (1, 0, 4.0), (1, 1, 2.0)];
/// let mut mf = MatrixFactorization::new(2, 2, MfConfig::default(), &mut rng);
/// mf.fit(&triplets, &mut rng);
/// assert!((mf.predict(0, 0) - 5.0).abs() < 1.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixFactorization {
    config: MfConfig,
    global_mean: f64,
    user_bias: Vec<f64>,
    item_bias: Vec<f64>,
    /// `user_factors[u * k .. (u+1) * k]`.
    user_factors: Vec<f64>,
    item_factors: Vec<f64>,
}

impl MatrixFactorization {
    /// Creates a model for `num_users × num_items` with small random
    /// factors.
    ///
    /// # Panics
    ///
    /// Panics when `config.latent_dim == 0`.
    pub fn new<R: Rng + ?Sized>(
        num_users: usize,
        num_items: usize,
        config: MfConfig,
        rng: &mut R,
    ) -> Self {
        assert!(config.latent_dim > 0, "latent dimension must be positive");
        let k = config.latent_dim;
        let init = |rng: &mut R, n: usize| -> Vec<f64> {
            (0..n).map(|_| rng.gen_range(-0.05..0.05)).collect()
        };
        MatrixFactorization {
            config,
            global_mean: 0.0,
            user_bias: vec![0.0; num_users],
            item_bias: vec![0.0; num_items],
            user_factors: init(rng, num_users * k),
            item_factors: init(rng, num_items * k),
        }
    }

    /// Latent dimension.
    pub fn latent_dim(&self) -> usize {
        self.config.latent_dim
    }

    /// Predicted value for `(user, item)`.
    ///
    /// # Panics
    ///
    /// Panics when `user` or `item` is out of range.
    pub fn predict(&self, user: usize, item: usize) -> f64 {
        let k = self.config.latent_dim;
        let pu = &self.user_factors[user * k..(user + 1) * k];
        let qi = &self.item_factors[item * k..(item + 1) * k];
        self.global_mean + self.user_bias[user] + self.item_bias[item] + dot(pu, qi)
    }

    /// Trains on observed `(user, item, value)` triplets by SGD.
    ///
    /// # Panics
    ///
    /// Panics when a triplet indexes out of range.
    pub fn fit<R: Rng + ?Sized>(&mut self, triplets: &[(usize, usize, f64)], rng: &mut R) {
        if triplets.is_empty() {
            return;
        }
        self.global_mean = triplets.iter().map(|&(_, _, v)| v).sum::<f64>() / triplets.len() as f64;
        let k = self.config.latent_dim;
        let lr = self.config.learning_rate;
        let l2 = self.config.l2;
        let mut order: Vec<usize> = (0..triplets.len()).collect();
        for _ in 0..self.config.epochs {
            order.shuffle(rng);
            for &idx in &order {
                let (u, i, v) = triplets[idx];
                let err = self.predict(u, i) - v;
                self.user_bias[u] -= lr * (err + l2 * self.user_bias[u]);
                self.item_bias[i] -= lr * (err + l2 * self.item_bias[i]);
                // Zipped slice walk over the two factor rows: one
                // bounds check per row instead of four per component,
                // with the pre-update values read into locals so the
                // coupled update keeps its original semantics.
                let pu = &mut self.user_factors[u * k..(u + 1) * k];
                let qi = &mut self.item_factors[i * k..(i + 1) * k];
                for (p, q) in pu.iter_mut().zip(qi.iter_mut()) {
                    let (pv, qv) = (*p, *q);
                    *p -= lr * (err * qv + l2 * pv);
                    *q -= lr * (err * pv + l2 * qv);
                }
            }
        }
    }

    /// Root-mean-squared error over triplets (0 for empty input).
    pub fn rmse(&self, triplets: &[(usize, usize, f64)]) -> f64 {
        if triplets.is_empty() {
            return 0.0;
        }
        let sse: f64 = triplets
            .iter()
            .map(|&(u, i, v)| (self.predict(u, i) - v).powi(2))
            .sum();
        (sse / triplets.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Synthetic low-rank matrix: v = bias_u + bias_i + latent match.
    fn synthetic(rng: &mut StdRng) -> Vec<(usize, usize, f64)> {
        let users = 20;
        let items = 15;
        let u_lat: Vec<f64> = (0..users).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let i_lat: Vec<f64> = (0..items).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut triplets = Vec::new();
        for (u, &ul) in u_lat.iter().enumerate() {
            for (i, &il) in i_lat.iter().enumerate() {
                if rng.gen_bool(0.6) {
                    triplets.push((u, i, 2.0 + 3.0 * ul * il));
                }
            }
        }
        triplets
    }

    #[test]
    fn fits_low_rank_structure() {
        let mut rng = StdRng::seed_from_u64(42);
        let triplets = synthetic(&mut rng);
        let mut mf = MatrixFactorization::new(20, 15, MfConfig::default(), &mut rng);
        let before = mf.rmse(&triplets);
        mf.fit(&triplets, &mut rng);
        let after = mf.rmse(&triplets);
        assert!(after < 0.5 * before, "rmse {before} -> {after}");
        assert!(after < 0.6, "rmse {after}");
    }

    #[test]
    fn global_mean_fits_constant_matrix() {
        let mut rng = StdRng::seed_from_u64(1);
        let triplets: Vec<_> = (0..5)
            .flat_map(|u| (0..5).map(move |i| (u, i, 7.0)))
            .collect();
        let mut mf = MatrixFactorization::new(5, 5, MfConfig::default(), &mut rng);
        mf.fit(&triplets, &mut rng);
        assert!((mf.predict(2, 3) - 7.0).abs() < 0.2);
    }

    #[test]
    fn empty_fit_is_noop() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mf = MatrixFactorization::new(3, 3, MfConfig::default(), &mut rng);
        mf.fit(&[], &mut rng);
        assert_eq!(mf.rmse(&[]), 0.0);
    }

    #[test]
    fn cold_user_predicts_near_global_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let triplets = vec![(0, 0, 4.0), (1, 0, 4.0)];
        let mut mf = MatrixFactorization::new(3, 2, MfConfig::default(), &mut rng);
        mf.fit(&triplets, &mut rng);
        // User 2 and item 1 were never observed.
        assert!((mf.predict(2, 1) - 4.0).abs() < 0.5);
    }

    #[test]
    #[should_panic]
    fn out_of_range_predict_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let mf = MatrixFactorization::new(2, 2, MfConfig::default(), &mut rng);
        mf.predict(5, 0);
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mf = MatrixFactorization::new(4, 4, MfConfig::default(), &mut rng);
        mf.fit(&[(0, 1, 3.0), (2, 3, -1.0)], &mut rng);
        let json = serde_json::to_string(&mf).unwrap();
        let back: MatrixFactorization = serde_json::from_str(&json).unwrap();
        assert_eq!(back.predict(0, 1), mf.predict(0, 1));
    }
}
