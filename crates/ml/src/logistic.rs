//! L2-regularized logistic regression — the paper's `â` predictor.
//!
//! The paper deliberately keeps the who-will-answer model linear:
//! "the sparsity of `a_{u,q}` in discussion forums … renders nonlinear
//! techniques prone to overfitting for this prediction task"
//! (Section II-A1).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::sigmoid;
use crate::glm::{self, GlmScratch};
use crate::linalg::dot;
use crate::optim::Adam;
use crate::train_state::{glm_snapshot, restore_glm, TrainState, TrainStateError};

/// Binary logistic-regression classifier
/// `P(a = 1 | x) = 1 / (1 + e^{−xᵀβ − b})`.
///
/// # Example
///
/// ```
/// use forumcast_ml::LogisticRegression;
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(0);
/// let xs = vec![vec![-2.0], vec![-1.0], vec![1.0], vec![2.0]];
/// let ys = vec![false, false, true, true];
/// let mut model = LogisticRegression::new(1);
/// model.fit(&xs, &ys, 500, 0.1, 1e-4, &mut rng);
/// assert!(model.predict_proba(&[2.0]) > 0.9);
/// assert!(model.predict_proba(&[-2.0]) < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// Creates a zero-initialized model for `dim` features.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        LogisticRegression {
            weights: vec![0.0; dim],
            bias: 0.0,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// The regression coefficients `β`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Predicted probability `P(a = 1 | x)`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != dim()`.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(dot(&self.weights, x) + self.bias)
    }

    /// Average negative log-likelihood plus L2 penalty on `xs`/`ys`.
    ///
    /// # Panics
    ///
    /// Panics when `xs` and `ys` lengths differ.
    pub fn loss(&self, xs: &[Vec<f64>], ys: &[bool], l2: f64) -> f64 {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        if xs.is_empty() {
            return 0.0;
        }
        let nll: f64 = xs
            .iter()
            .zip(ys)
            .map(|(x, &y)| {
                let p = self.predict_proba(x).clamp(1e-12, 1.0 - 1e-12);
                if y {
                    -p.ln()
                } else {
                    -(1.0 - p).ln()
                }
            })
            .sum();
        nll / xs.len() as f64 + 0.5 * l2 * dot(&self.weights, &self.weights)
    }

    /// Fits by mini-batch gradient descent with Adam, `epochs` passes,
    /// batch size 32, learning rate `lr`, L2 strength `l2`, and the
    /// crate-global thread setting (see [`crate::set_train_threads`]).
    ///
    /// Each epoch shuffles a fresh identity permutation, so the RNG
    /// state alone determines the remaining schedule — the property
    /// sub-fold resume ([`Self::fit_resumable`]) relies on.
    ///
    /// # Panics
    ///
    /// Panics when `xs` and `ys` lengths differ or a sample has the
    /// wrong dimension.
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[bool],
        epochs: usize,
        lr: f64,
        l2: f64,
        rng: &mut R,
    ) {
        self.fit_with(xs, ys, epochs, lr, l2, 32, 0, rng);
    }

    /// [`Self::fit`] with explicit batch size and worker-thread count
    /// (`threads == 0` uses the crate-global setting). Gradient
    /// accumulation follows the fixed-order chunk reduction, so any
    /// thread count yields bitwise-identical parameters.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::fit`], plus `batch_size == 0`.
    #[allow(clippy::too_many_arguments)] // fit's knobs plus the batch/thread pair
    pub fn fit_with<R: Rng + ?Sized>(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[bool],
        epochs: usize,
        lr: f64,
        l2: f64,
        batch_size: usize,
        threads: usize,
        rng: &mut R,
    ) {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        if xs.is_empty() {
            return;
        }
        let mut opt = Adam::new(lr);
        // Flat parameter vector: [weights..., bias].
        let mut params: Vec<f64> = self.weights.clone();
        params.push(self.bias);
        let mut scratch = GlmScratch::default();
        for _ in 0..epochs {
            forumcast_obs::counter_add("ml.logistic.epochs", 1);
            glm::epoch_pass(
                &mut params,
                &mut opt,
                xs,
                l2,
                batch_size,
                threads,
                &mut scratch,
                rng,
                |z, i| sigmoid(z) - if ys[i] { 1.0 } else { 0.0 },
            );
        }
        self.bias = params.pop().expect("bias present");
        self.weights = params;
    }

    /// [`Self::fit`] with epoch-granular checkpointing: when `resume`
    /// is given, training continues from that snapshot and finishes
    /// bitwise-identically to an uninterrupted `fit`; every
    /// `snapshot_every` completed epochs (0 disables) `on_snapshot`
    /// receives a fresh [`TrainState`] to persist.
    ///
    /// # Errors
    ///
    /// Returns [`TrainStateError`] when `resume` does not fit this
    /// model (wrong parameter count, non-Adam optimizer, degenerate
    /// RNG state).
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::fit`].
    #[allow(clippy::too_many_arguments)] // resume plumbing mirrors `fit` plus the snapshot triple
    pub fn fit_resumable(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[bool],
        epochs: usize,
        lr: f64,
        l2: f64,
        rng: &mut StdRng,
        resume: Option<&TrainState>,
        snapshot_every: usize,
        on_snapshot: &mut dyn FnMut(&TrainState),
    ) -> Result<(), TrainStateError> {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        if xs.is_empty() {
            return Ok(());
        }
        let dim = self.weights.len();
        let mut opt = Adam::new(lr);
        let mut params: Vec<f64> = self.weights.clone();
        params.push(self.bias);
        let mut start = 0;
        if let Some(state) = resume {
            restore_glm(state, &mut params, &mut opt, rng)?;
            start = state.epoch as usize;
        }
        let mut scratch = GlmScratch::default();
        for epoch in start..epochs {
            forumcast_obs::counter_add("ml.logistic.epochs", 1);
            glm::epoch_pass(
                &mut params,
                &mut opt,
                xs,
                l2,
                32,
                0,
                &mut scratch,
                rng,
                |z, i| sigmoid(z) - if ys[i] { 1.0 } else { 0.0 },
            );
            if snapshot_every > 0 && (epoch + 1) % snapshot_every == 0 && epoch + 1 < epochs {
                on_snapshot(&glm_snapshot(&params, &opt, l2, epoch + 1, rng));
            }
        }
        debug_assert_eq!(params.len(), dim + 1);
        self.bias = params.pop().expect("bias present");
        self.weights = params;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn separable(rng: &mut StdRng, n: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let label = rng.gen_bool(0.5);
            let center = if label { 1.5 } else { -1.5 };
            xs.push(vec![
                center + rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ]);
            ys.push(label);
        }
        (xs, ys)
    }

    #[test]
    fn fits_linearly_separable_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let (xs, ys) = separable(&mut rng, 200);
        let mut model = LogisticRegression::new(2);
        model.fit(&xs, &ys, 100, 0.05, 1e-4, &mut rng);
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| (model.predict_proba(x) > 0.5) == y)
            .count();
        assert!(correct as f64 / xs.len() as f64 > 0.95, "{correct}/200");
    }

    #[test]
    fn loss_decreases_with_training() {
        let mut rng = StdRng::seed_from_u64(2);
        let (xs, ys) = separable(&mut rng, 100);
        let mut model = LogisticRegression::new(2);
        let before = model.loss(&xs, &ys, 1e-4);
        model.fit(&xs, &ys, 50, 0.05, 1e-4, &mut rng);
        let after = model.loss(&xs, &ys, 1e-4);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        // One manual Adam-free check: compare loss gradient numerically
        // by nudging a weight and confirming the loss moves as the
        // analytic sign predicts after a tiny fit step.
        let xs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let ys = vec![true, false];
        let mut m = LogisticRegression::new(2);
        // Analytic gradient at zero weights: p = 0.5 for all.
        // dL/dw0 = mean((p - y) x0) = ((0.5-1)*1 + 0)/2 = -0.25.
        let eps = 1e-6;
        let base = m.loss(&xs, &ys, 0.0);
        m.weights[0] = eps;
        let up = m.loss(&xs, &ys, 0.0);
        let numeric = (up - base) / eps;
        assert!((numeric + 0.25).abs() < 1e-4, "numeric {numeric}");
    }

    #[test]
    fn strong_l2_shrinks_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let (xs, ys) = separable(&mut rng, 100);
        let mut weak = LogisticRegression::new(2);
        weak.fit(&xs, &ys, 100, 0.05, 1e-6, &mut rng.clone());
        let mut strong = LogisticRegression::new(2);
        strong.fit(&xs, &ys, 100, 0.05, 1.0, &mut rng);
        assert!(
            crate::linalg::norm2(strong.weights()) < crate::linalg::norm2(weak.weights()),
            "L2 should shrink weights"
        );
    }

    #[test]
    fn empty_training_set_is_a_no_op() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = LogisticRegression::new(3);
        m.fit(&[], &[], 10, 0.1, 0.0, &mut rng);
        assert_eq!(m.weights(), &[0.0, 0.0, 0.0]);
        assert_eq!(m.predict_proba(&[1.0, 1.0, 1.0]), 0.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_labels_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        LogisticRegression::new(1).fit(&[vec![1.0]], &[], 1, 0.1, 0.0, &mut rng);
    }

    fn bits(m: &LogisticRegression) -> Vec<u64> {
        let mut out: Vec<u64> = m.weights().iter().map(|w| w.to_bits()).collect();
        out.push(m.bias().to_bits());
        out
    }

    #[test]
    fn fit_resumable_without_resume_matches_fit_bitwise() {
        let mut rng = StdRng::seed_from_u64(8);
        let (xs, ys) = separable(&mut rng, 120);
        let mut plain = LogisticRegression::new(2);
        plain.fit(&xs, &ys, 40, 0.05, 1e-4, &mut rng.clone());
        let mut resumable = LogisticRegression::new(2);
        resumable
            .fit_resumable(&xs, &ys, 40, 0.05, 1e-4, &mut rng, None, 0, &mut |_| {})
            .unwrap();
        assert_eq!(bits(&plain), bits(&resumable));
    }

    #[test]
    fn resume_from_every_snapshot_is_bitwise_identical() {
        let mut rng = StdRng::seed_from_u64(9);
        let (xs, ys) = separable(&mut rng, 120);
        let seed_rng = rng.clone();
        let mut reference = LogisticRegression::new(2);
        let mut snapshots = Vec::new();
        reference
            .fit_resumable(&xs, &ys, 30, 0.05, 1e-4, &mut rng, None, 7, &mut |s| {
                snapshots.push(s.clone())
            })
            .unwrap();
        assert!(!snapshots.is_empty());
        for snap in &snapshots {
            // Round-trip through JSON, as the on-disk checkpoint does.
            let snap = TrainState::from_json(&snap.to_json()).unwrap();
            let mut resumed = LogisticRegression::new(2);
            let mut rng = seed_rng.clone();
            resumed
                .fit_resumable(
                    &xs,
                    &ys,
                    30,
                    0.05,
                    1e-4,
                    &mut rng,
                    Some(&snap),
                    0,
                    &mut |_| {},
                )
                .unwrap();
            assert_eq!(bits(&reference), bits(&resumed), "epoch {}", snap.epoch);
        }
    }

    #[test]
    fn resume_with_wrong_shape_is_a_typed_error() {
        let mut rng = StdRng::seed_from_u64(10);
        let (xs, ys) = separable(&mut rng, 40);
        let mut donor = LogisticRegression::new(2);
        let mut snapshots = Vec::new();
        donor
            .fit_resumable(&xs, &ys, 10, 0.05, 0.0, &mut rng, None, 5, &mut |s| {
                snapshots.push(s.clone())
            })
            .unwrap();
        let xs3: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0], x[1], 0.0]).collect();
        let mut other = LogisticRegression::new(3);
        let err = other
            .fit_resumable(
                &xs3,
                &ys,
                10,
                0.05,
                0.0,
                &mut rng,
                Some(&snapshots[0]),
                0,
                &mut |_| {},
            )
            .unwrap_err();
        assert!(matches!(err, TrainStateError::ParamShape { .. }));
    }

    #[test]
    fn serde_roundtrip() {
        let m = LogisticRegression::new(2);
        let json = serde_json::to_string(&m).unwrap();
        let back: LogisticRegression = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
