//! Property-based round-trip coverage for [`TrainState`]
//! serialization: arbitrary bit patterns (subnormals included) must
//! survive the JSON round trip bitwise, and NaN/∞ must be rejected at
//! load with a typed error.

use proptest::prelude::*;

use forumcast_ml::{OptimizerState, TrainState, TrainStateError};

/// f64 drawn from raw bit patterns, folded into the finite range:
/// clearing the exponent of a NaN/∞ pattern yields a subnormal (or
/// zero), so subnormals stay heavily represented.
fn arb_finite_f64() -> impl Strategy<Value = f64> {
    (0u64..=u64::MAX).prop_map(|bits| {
        let f = f64::from_bits(bits);
        if f.is_finite() {
            f
        } else {
            f64::from_bits(bits & !0x7FF0_0000_0000_0000)
        }
    })
}

fn arb_state() -> impl Strategy<Value = TrainState> {
    (
        proptest::collection::vec(arb_finite_f64(), 1..12),
        proptest::collection::vec((arb_finite_f64(), arb_finite_f64()), 1..12),
        arb_finite_f64(),
        (0u64..10_000, 0u64..1_000_000),
        (
            1u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
        ),
    )
        .prop_map(|(params, mv, wd, (epoch, steps), (r0, r1, r2, r3))| {
            let (m, v): (Vec<f64>, Vec<f64>) = mv.into_iter().unzip();
            TrainState {
                params,
                optimizer: OptimizerState::Adam {
                    learning_rate: 0.01,
                    beta1: 0.9,
                    beta2: 0.999,
                    epsilon: 1e-8,
                    t: steps,
                    m,
                    v,
                },
                weight_decay: wd.abs(),
                epoch,
                steps,
                // First word forced non-zero so the state is never the
                // degenerate all-zero xoshiro fixed point.
                rng: [r0, r1, r2, r3],
            }
        })
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    /// Finite states — subnormals, ±0, extreme exponents — round-trip
    /// through JSON bitwise.
    #[test]
    fn roundtrip_is_bitwise(state in arb_state()) {
        let back = TrainState::from_json(&state.to_json()).unwrap();
        prop_assert_eq!(bits(&back.params), bits(&state.params));
        prop_assert_eq!(
            back.weight_decay.to_bits(),
            state.weight_decay.to_bits()
        );
        prop_assert_eq!(back.epoch, state.epoch);
        prop_assert_eq!(back.steps, state.steps);
        prop_assert_eq!(back.rng, state.rng);
        match (&back.optimizer, &state.optimizer) {
            (
                OptimizerState::Adam { t: ta, m: ma, v: va, .. },
                OptimizerState::Adam { t: tb, m: mb, v: vb, .. },
            ) => {
                prop_assert_eq!(ta, tb);
                prop_assert_eq!(bits(ma), bits(mb));
                prop_assert_eq!(bits(va), bits(vb));
            }
            other => prop_assert!(false, "variant changed: {:?}", other),
        }
    }

    /// A NaN or ∞ anywhere in the parameter vector is rejected at
    /// load with the typed [`TrainStateError::NonFinite`] error.
    #[test]
    fn non_finite_params_rejected(
        state in arb_state(),
        slot in 0usize..12,
        inf in any::<bool>(),
    ) {
        let mut state = state;
        let idx = slot % state.params.len();
        state.params[idx] = if inf { f64::INFINITY } else { f64::NAN };
        match TrainState::from_json(&state.to_json()) {
            Err(TrainStateError::NonFinite { field, index }) => {
                prop_assert_eq!(field, "params");
                prop_assert_eq!(index, idx);
            }
            other => prop_assert!(false, "expected NonFinite, got {:?}", other),
        }
    }

    /// Same rejection for the optimizer moment vectors.
    #[test]
    fn non_finite_moments_rejected(
        state in arb_state(),
        slot in 0usize..12,
        second in any::<bool>(),
    ) {
        let mut state = state;
        let expected_field = if second { "v" } else { "m" };
        let idx;
        {
            let OptimizerState::Adam { m, v, .. } = &mut state.optimizer else {
                panic!("arb_state builds Adam");
            };
            let target = if second { v } else { m };
            idx = slot % target.len();
            target[idx] = f64::NEG_INFINITY;
        }
        match TrainState::from_json(&state.to_json()) {
            Err(TrainStateError::NonFinite { field, index }) => {
                prop_assert_eq!(field, expected_field);
                prop_assert_eq!(index, idx);
            }
            other => prop_assert!(false, "expected NonFinite, got {:?}", other),
        }
    }
}
