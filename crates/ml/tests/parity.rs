//! 1-vs-N-thread bitwise parity for the training stack.
//!
//! Mini-batch gradient accumulation fans out over `forumcast-par`'s
//! fixed-order chunk reduction, so the thread count must never change
//! a single output bit — the same discipline (and test shape) as
//! `topics/tests/parity.rs` for the LDA samplers. Each case trains
//! with batches larger than `CHUNK_SIZE = 64` so the parallel path
//! actually engages, then compares every learned parameter bitwise.

use forumcast_ml::{
    Activation, Adam, LayerSpec, LogisticRegression, Mlp, PoissonRegression, Trainer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS: [usize; 3] = [1, 2, 7];

fn features(n: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|j| ((i * 7 + j * 3) as f64 * 0.13).sin())
                .collect()
        })
        .collect()
}

fn mlp_bits(mlp: &Mlp) -> Vec<u64> {
    mlp.params().iter().map(|p| p.to_bits()).collect()
}

fn train_mlp(threads: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(99);
    let mut mlp = Mlp::new(
        &[
            LayerSpec::new(4, 12, Activation::Tanh),
            LayerSpec::new(12, 1, Activation::Identity),
        ],
        &mut rng,
    );
    let xs = features(600, 4);
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x[0] * x[1] - 0.5 * x[2] + x[3].tanh())
        .collect();
    let mut trainer = Trainer::new(Adam::new(0.01), 256)
        .with_weight_decay(1e-4)
        .with_threads(threads);
    for _ in 0..3 {
        trainer.epoch(&mut mlp, &xs, &ys, &mut rng);
    }
    mlp_bits(&mlp)
}

#[test]
fn trainer_epoch_is_bitwise_identical_across_thread_counts() {
    let serial = train_mlp(THREADS[0]);
    for &threads in &THREADS[1..] {
        assert_eq!(serial, train_mlp(threads), "threads={threads}");
    }
}

fn train_logistic(threads: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(17);
    let xs = features(600, 5);
    let ys: Vec<bool> = xs.iter().map(|x| x[0] + x[1] - x[4] > 0.0).collect();
    let mut model = LogisticRegression::new(5);
    model.fit_with(&xs, &ys, 4, 0.05, 1e-4, 256, threads, &mut rng);
    let mut bits: Vec<u64> = model.weights().iter().map(|w| w.to_bits()).collect();
    bits.push(model.bias().to_bits());
    bits
}

#[test]
fn logistic_fit_is_bitwise_identical_across_thread_counts() {
    let serial = train_logistic(THREADS[0]);
    for &threads in &THREADS[1..] {
        assert_eq!(serial, train_logistic(threads), "threads={threads}");
    }
}

fn train_poisson(threads: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(23);
    let xs = features(600, 3);
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (0.4 + 0.8 * x[0] - 0.3 * x[2]).exp().round())
        .collect();
    let mut model = PoissonRegression::new(3);
    model.fit_with(&xs, &ys, 4, 0.05, 1e-6, 256, threads, &mut rng);
    let mut bits: Vec<u64> = model.weights().iter().map(|w| w.to_bits()).collect();
    bits.push(model.bias().to_bits());
    bits
}

#[test]
fn poisson_fit_is_bitwise_identical_across_thread_counts() {
    let serial = train_poisson(THREADS[0]);
    for &threads in &THREADS[1..] {
        assert_eq!(serial, train_poisson(threads), "threads={threads}");
    }
}

/// The thread count is not part of [`forumcast_ml::TrainState`]: a run
/// snapshotted while training serially must resume bit-identically on
/// seven workers (and vice versa) — the PR 4 sub-fold resume guarantee
/// carried over to the parallel kernels.
#[test]
fn snapshot_at_one_thread_resumes_bitwise_identically_at_seven() {
    let make_net = |rng: &mut StdRng| {
        Mlp::new(
            &[
                LayerSpec::new(4, 8, Activation::Tanh),
                LayerSpec::new(8, 1, Activation::Identity),
            ],
            rng,
        )
    };
    let xs = features(300, 4);
    let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - x[3]).collect();

    let mut rng = StdRng::seed_from_u64(5);
    let mut mlp = make_net(&mut rng);
    let mut trainer = Trainer::new(Adam::new(0.01), 128).with_threads(1);
    for _ in 0..3 {
        trainer.epoch(&mut mlp, &xs, &ys, &mut rng);
    }
    let state = trainer.snapshot(&mlp, &rng);
    for _ in 0..3 {
        trainer.epoch(&mut mlp, &xs, &ys, &mut rng);
    }

    let mut rng7 = StdRng::seed_from_u64(0);
    let mut mlp7 = make_net(&mut rng7);
    let mut trainer7 = Trainer::new(Adam::new(0.01), 128).with_threads(7);
    trainer7.restore(&state, &mut mlp7, &mut rng7).unwrap();
    for _ in 0..3 {
        trainer7.epoch(&mut mlp7, &xs, &ys, &mut rng7);
    }

    assert_eq!(mlp_bits(&mlp), mlp_bits(&mlp7));
}
