//! Armed-collector regression tests for training telemetry.
//!
//! These live in their own integration binary because arming the
//! process-global `forumcast-obs` collector serializes every armed
//! scope; keeping them out of the unit-test binary avoids contending
//! with the fault-injection tests there.

use forumcast_ml::{Activation, Adam, LayerSpec, Mlp, Trainer};
use forumcast_obs::EventKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn toy(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64 - 0.5]).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0]).collect();
    (xs, ys)
}

fn metric_values(trace: &forumcast_obs::TraceLog, name: &str) -> Vec<(Option<u64>, f64)> {
    trace
        .events
        .iter()
        .filter(|e| e.base_name() == name)
        .filter_map(|e| match e.kind {
            EventKind::Metric { value } => Some((e.unit, value)),
            _ => None,
        })
        .collect()
}

/// `ml.epoch.grad_norm` is the mean per-step gradient norm over the
/// epoch's non-poisoned steps. With the `nan-grad` fault aimed at the
/// *last* step of epoch 1 (batch 16 over 32 samples → steps 2 and 3
/// belong to epoch 1), the epoch's statistic comes from its clean
/// first step and must stay finite — the old accumulator summed the
/// poisoned step's squared norm and reported NaN.
#[test]
fn grad_norm_stays_finite_when_nan_grad_fault_fires() {
    let _fault = forumcast_resilience::FaultPlan::parse("nan-grad:3")
        .unwrap()
        .arm();
    let _obs = forumcast_obs::arm();
    let mut rng = StdRng::seed_from_u64(3);
    let mut mlp = Mlp::new(&[LayerSpec::new(1, 1, Activation::Identity)], &mut rng);
    let (xs, ys) = toy(32);
    let mut trainer = Trainer::new(Adam::new(0.01), 16);
    for _ in 0..2 {
        trainer.epoch(&mut mlp, &xs, &ys, &mut rng);
    }
    let trace = forumcast_obs::drain().expect("collector armed");
    let norms = metric_values(&trace, "ml.epoch.grad_norm");
    assert_eq!(
        norms.iter().map(|(u, _)| *u).collect::<Vec<_>>(),
        vec![Some(0), Some(1)],
        "one grad_norm per epoch"
    );
    for (unit, value) in &norms {
        assert!(
            value.is_finite(),
            "grad_norm for epoch {unit:?} must skip the poisoned step, got {value}"
        );
    }
    // The injected NaN still reaches the parameters and the loss.
    let losses = metric_values(&trace, "ml.epoch.loss");
    assert!(
        losses.iter().any(|(_, v)| v.is_nan()),
        "divergence visible in loss"
    );
}

/// When every optimizer step of an epoch is poisoned there is no
/// well-defined gradient statistic — the metric is omitted rather
/// than reported as NaN (the loss metric still records divergence).
#[test]
fn grad_norm_is_omitted_when_all_steps_are_poisoned() {
    let _fault = forumcast_resilience::FaultPlan::parse("nan-grad:0")
        .unwrap()
        .arm();
    let _obs = forumcast_obs::arm();
    let mut rng = StdRng::seed_from_u64(4);
    let mut mlp = Mlp::new(&[LayerSpec::new(1, 1, Activation::Identity)], &mut rng);
    let (xs, ys) = toy(8);
    // One batch per epoch → the single step of epoch 0 is poisoned.
    let mut trainer = Trainer::new(Adam::new(0.01), 8);
    trainer.epoch(&mut mlp, &xs, &ys, &mut rng);
    let trace = forumcast_obs::drain().expect("collector armed");
    assert!(
        metric_values(&trace, "ml.epoch.grad_norm").is_empty(),
        "fully-poisoned epoch must not report a grad_norm"
    );
    let losses = metric_values(&trace, "ml.epoch.loss");
    assert_eq!(losses.len(), 1);
    assert!(losses[0].1.is_nan(), "loss records the divergence");
}

/// Healthy training reports one finite grad_norm per epoch.
#[test]
fn healthy_epochs_report_finite_grad_norms() {
    let _obs = forumcast_obs::arm();
    let mut rng = StdRng::seed_from_u64(5);
    let mut mlp = Mlp::new(
        &[
            LayerSpec::new(1, 4, Activation::Tanh),
            LayerSpec::new(4, 1, Activation::Identity),
        ],
        &mut rng,
    );
    let (xs, ys) = toy(32);
    let mut trainer = Trainer::new(Adam::new(0.01), 8);
    for _ in 0..3 {
        trainer.epoch(&mut mlp, &xs, &ys, &mut rng);
    }
    let trace = forumcast_obs::drain().expect("collector armed");
    let norms = metric_values(&trace, "ml.epoch.grad_norm");
    assert_eq!(norms.len(), 3, "one grad_norm per epoch");
    assert!(norms.iter().all(|(_, v)| v.is_finite() && *v > 0.0));
}
