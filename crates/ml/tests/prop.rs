//! Property-based tests for the ML substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use forumcast_ml::{Activation, Adam, LayerSpec, Mlp, Optimizer, Sgd};

fn arb_input(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-5.0f64..5.0, dim)
}

proptest! {
    /// Forward passes never produce NaN/Inf on bounded inputs.
    #[test]
    fn mlp_forward_finite(x in arb_input(3), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(
            &[
                LayerSpec::new(3, 8, Activation::Tanh),
                LayerSpec::new(8, 4, Activation::Relu),
                LayerSpec::new(4, 1, Activation::Softplus),
            ],
            &mut rng,
        );
        let y = mlp.forward(&x);
        prop_assert!(y[0].is_finite());
        prop_assert!(y[0] >= 0.0, "softplus output must be non-negative");
    }

    /// Backward gradients are finite and linear in the output grad.
    #[test]
    fn mlp_backward_scales_linearly(x in arb_input(2), scale in 0.1f64..4.0) {
        let mut rng = StdRng::seed_from_u64(11);
        let mlp = Mlp::new(
            &[
                LayerSpec::new(2, 5, Activation::Tanh),
                LayerSpec::new(5, 1, Activation::Identity),
            ],
            &mut rng,
        );
        let cache = mlp.forward_cache(&x);
        let mut g1 = vec![0.0; mlp.num_params()];
        mlp.backward(&cache, &[1.0], &mut g1);
        let mut g2 = vec![0.0; mlp.num_params()];
        mlp.backward(&cache, &[scale], &mut g2);
        for (a, b) in g1.iter().zip(&g2) {
            prop_assert!(a.is_finite() && b.is_finite());
            prop_assert!((a * scale - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    /// One optimizer step on a convex quadratic never overshoots the
    /// optimum by more than it started away from it (for small lr).
    #[test]
    fn sgd_step_descends_quadratic(x0 in -10.0f64..10.0) {
        let mut opt = Sgd::new(0.05);
        let mut x = vec![x0];
        for _ in 0..50 {
            let g = vec![2.0 * x[0]];
            opt.step(&mut x, &g);
        }
        prop_assert!(x[0].abs() <= x0.abs() + 1e-9);
    }

    /// Adam steps have bounded magnitude (≈ lr per step).
    #[test]
    fn adam_step_bounded(g in -1e6f64..1e6) {
        let mut opt = Adam::new(0.01);
        let mut x = vec![0.0];
        opt.step(&mut x, &[g]);
        prop_assert!(x[0].abs() <= 0.011, "step {x:?} for grad {g}");
    }

    /// Activations are monotone non-decreasing.
    #[test]
    fn activations_monotone(a in -6.0f64..6.0, b in -6.0f64..6.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for act in [
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Softplus,
            Activation::Identity,
        ] {
            prop_assert!(act.apply(lo) <= act.apply(hi) + 1e-12, "{act:?}");
        }
    }
}
