//! # forumcast
//!
//! A from-scratch Rust reproduction of Hansen et al., *Predicting the
//! Timing and Quality of Responses in Online Discussion Forums*
//! (IEEE ICDCS 2019): joint prediction of **who** will answer a
//! question on a CQA forum, the **net votes** the answer will
//! receive, and the **time** until it arrives — plus the LP-based
//! question-recommendation system built on those predictions.
//!
//! This facade crate re-exports the workspace's public API. The
//! pieces (bottom-up):
//!
//! * [`data`] — forum data model, preprocessing, JSON import/export;
//! * [`synth`] — a calibrated synthetic Stack-Overflow-like dataset
//!   generator (substitute for the paper's crawl; DESIGN.md §3);
//! * [`text`] / [`topics`] — tokenizer and collapsed-Gibbs LDA;
//! * [`graph`] — SLN graphs, centralities, resource allocation;
//! * [`ml`] — MLPs/backprop, Adam, logistic/Poisson regression,
//!   matrix factorization, SPARFA;
//! * [`features`] — the paper's 20 user/question/user-question/social
//!   features;
//! * [`core`] — the three predictors (logistic `â`, deep-net `v̂`,
//!   point-process `r̂`) behind [`core::ResponsePredictor`];
//! * [`eval`] — metrics, stratified CV, and runners for every table
//!   and figure in the paper;
//! * [`recsys`] — the Section-V question router (LP + load windows).
//!
//! # Quickstart
//!
//! ```
//! use forumcast::prelude::*;
//!
//! // A small synthetic forum, preprocessed the paper's way.
//! let (dataset, _report) = SynthConfig::small().generate().preprocess();
//! assert!(dataset.num_questions() > 0);
//!
//! // SLN graph analytics (Figure 2).
//! let qa = qa_graph(dataset.num_users(), dataset.threads());
//! let stats = GraphStats::compute(&qa);
//! assert!(stats.average_degree > 0.0);
//! ```
//!
//! See `examples/` for end-to-end training, evaluation, and routing.

pub use forumcast_abtest as abtest;
pub use forumcast_core as core;
pub use forumcast_data as data;
pub use forumcast_eval as eval;
pub use forumcast_features as features;
pub use forumcast_graph as graph;
pub use forumcast_ml as ml;
pub use forumcast_recsys as recsys;
pub use forumcast_synth as synth;
pub use forumcast_text as text;
pub use forumcast_topics as topics;

/// Convenient glob import for applications.
pub mod prelude {
    pub use forumcast_core::{
        AnswerPredictor, ResponsePredictor, TimingPredictor, TrainConfig, TrainingSet,
        VotePredictor,
    };
    pub use forumcast_data::{Dataset, Hours, Post, PostBody, QuestionId, Thread, UserId};
    pub use forumcast_eval::{EvalConfig, ExperimentData};
    pub use forumcast_features::{ExtractorConfig, FeatureExtractor, FeatureGroup, FeatureId};
    pub use forumcast_graph::{dense_graph, qa_graph, GraphStats};
    pub use forumcast_recsys::{Candidate, QuestionRouter, RouterConfig};
    pub use forumcast_synth::SynthConfig;
    pub use forumcast_topics::{LdaConfig, LdaModel};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile_and_link() {
        let cfg = crate::prelude::SynthConfig::small();
        assert!(cfg.num_users > 0);
    }
}
