//! End-to-end integration test: synthetic forum → preprocessing →
//! topics/graphs/features → all three predictors → evaluation —
//! the full pipeline of the paper's Figure 1, across every crate.

use forumcast::eval::experiments::run_cv;
use forumcast::eval::split::stratified_folds;
use forumcast::eval::{auc, EvalConfig, ExperimentData};
use forumcast::prelude::*;

fn quick_config() -> EvalConfig {
    let mut cfg = EvalConfig::quick().with_seed(314);
    cfg.folds = 3;
    cfg
}

#[test]
fn full_pipeline_trains_and_beats_chance() {
    let cfg = quick_config();
    let (dataset, report) = cfg.synth.generate().preprocess();
    assert!(report.questions_kept > 100, "{report}");

    let data = ExperimentData::build(&dataset, &cfg);
    assert!(data.positives.len() > 100);
    assert_eq!(data.dim, 18 + 2 * cfg.extractor.lda.num_topics);

    let outcomes = run_cv(&data, &cfg, None, false);
    assert_eq!(outcomes.len(), cfg.folds);
    for o in &outcomes {
        // Answer task must clearly beat chance on every fold.
        assert!(o.auc > 0.65, "fold AUC {}", o.auc);
        assert!(o.rmse_votes.is_finite() && o.rmse_votes > 0.0);
        assert!(o.rmse_time.is_finite() && o.rmse_time > 0.0);
    }
}

#[test]
fn predictor_generalizes_across_the_three_tasks() {
    let cfg = quick_config();
    let (dataset, _) = cfg.synth.generate().preprocess();
    let data = ExperimentData::build(&dataset, &cfg);

    // Hand-rolled single split (last fold held out).
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(7);
    let pos_groups: Vec<u32> = data.positives.iter().map(|p| p.user.0).collect();
    let pos_folds = stratified_folds(&pos_groups, 3, &mut rng);
    let neg_groups: Vec<u32> = data.negatives.iter().map(|n| n.user.0).collect();
    let neg_folds = stratified_folds(&neg_groups, 3, &mut rng);

    let mut ts = TrainingSet::new(data.dim);
    for (i, p) in data.positives.iter().enumerate() {
        if pos_folds[i] != 0 {
            ts.push_answer(p.x.clone(), true);
            ts.push_vote(p.x.clone(), p.votes);
        }
    }
    for (i, n) in data.negatives.iter().enumerate() {
        if neg_folds[i] != 0 {
            ts.push_answer(n.x.clone(), false);
        }
    }
    // Group timing observations by target.
    let mut by_target: Vec<Vec<(Vec<f64>, f64)>> = vec![Vec::new(); data.num_targets];
    for (i, p) in data.positives.iter().enumerate() {
        if pos_folds[i] != 0 {
            by_target[p.target].push((p.x.clone(), p.response_time));
        }
    }
    for (t, answers) in by_target.into_iter().enumerate() {
        if !answers.is_empty() {
            ts.push_timing_thread(answers, Vec::new(), data.windows[t], data.num_users);
        }
    }
    let model = ResponsePredictor::train(&ts, &cfg.train);

    // Held-out answer AUC.
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for (i, p) in data.positives.iter().enumerate() {
        if pos_folds[i] == 0 {
            scores.push(model.predict_answer(&p.x));
            labels.push(true);
        }
    }
    for (i, n) in data.negatives.iter().enumerate() {
        if neg_folds[i] == 0 {
            scores.push(model.predict_answer(&n.x));
            labels.push(false);
        }
    }
    let a = auc(&scores, &labels);
    assert!(a > 0.65, "held-out AUC {a}");

    // Vote predictions correlate positively with observed votes.
    let vp: Vec<f64> = data
        .positives
        .iter()
        .enumerate()
        .filter(|(i, _)| pos_folds[*i] == 0)
        .map(|(_, p)| model.predict_votes(&p.x))
        .collect();
    let vt: Vec<f64> = data
        .positives
        .iter()
        .enumerate()
        .filter(|(i, _)| pos_folds[*i] == 0)
        .map(|(_, p)| p.votes)
        .collect();
    let corr = forumcast::eval::pearson(&vp, &vt);
    assert!(corr > 0.2, "vote prediction correlation {corr}");

    // Timing predictions are positive and within windows.
    for (i, p) in data.positives.iter().enumerate() {
        if pos_folds[i] == 0 {
            let r = model.predict_response_time(&p.x, data.windows[p.target]);
            assert!(
                r >= 0.0 && r <= data.windows[p.target] * 1.01,
                "r̂ {r} outside window {}",
                data.windows[p.target]
            );
        }
    }
}

#[test]
fn masked_groups_change_predictions() {
    use forumcast::eval::fold::{run_fold, MaskSpec};

    let cfg = quick_config();
    let (dataset, _) = cfg.synth.generate().preprocess();
    let data = ExperimentData::build(&dataset, &cfg);
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(9);
    let pos_groups: Vec<u32> = data.positives.iter().map(|p| p.user.0).collect();
    let pos_folds = stratified_folds(&pos_groups, 3, &mut rng);
    let neg_groups: Vec<u32> = data.negatives.iter().map(|n| n.user.0).collect();
    let neg_folds = stratified_folds(&neg_groups, 3, &mut rng);

    let full = run_fold(&data, &cfg, &pos_folds, &neg_folds, 0, None, false, None);
    let no_user = run_fold(
        &data,
        &cfg,
        &pos_folds,
        &neg_folds,
        0,
        Some(MaskSpec::Group(FeatureGroup::User)),
        false,
        None,
    );
    // Removing the user group must change (typically worsen) the
    // timing task, which the paper identifies as user-driven.
    assert_ne!(full.rmse_time, no_user.rmse_time);
    assert!(
        no_user.auc <= full.auc + 0.1,
        "masking should not help much"
    );
}
