//! Integration test: persistence of datasets and trained models
//! across the crate boundary (save → load → identical predictions).

use forumcast::data::io;
use forumcast::prelude::*;

#[test]
fn dataset_roundtrips_through_native_json() {
    let (dataset, _) = SynthConfig::small().with_seed(5).generate().preprocess();
    let json = io::to_json(&dataset).expect("serializes");
    let back = io::from_json(&json).expect("parses");
    assert_eq!(back, dataset);
    assert_eq!(back.stats().num_answers, dataset.stats().num_answers);
}

#[test]
fn trained_model_roundtrips_through_json() {
    // Small synthetic training set.
    let mut ts = TrainingSet::new(2);
    for i in 0..40 {
        let x = vec![if i % 2 == 0 { 1.0 } else { -1.0 }, (i % 5) as f64];
        ts.push_answer(x.clone(), i % 2 == 0);
        ts.push_vote(x.clone(), (i % 3) as f64);
        if i % 2 == 0 {
            ts.push_timing_thread(vec![(x, 1.0 + (i % 4) as f64)], vec![], 48.0, 20);
        }
    }
    let model = ResponsePredictor::train(&ts, &TrainConfig::fast());
    let json = serde_json::to_string(&model).expect("model serializes");
    let back: ResponsePredictor = serde_json::from_str(&json).expect("model parses");

    let probe = vec![1.0, 2.0];
    assert_eq!(back.predict_answer(&probe), model.predict_answer(&probe));
    assert_eq!(back.predict_votes(&probe), model.predict_votes(&probe));
    assert_eq!(
        back.predict_response_time(&probe, 48.0),
        model.predict_response_time(&probe, 48.0)
    );
}

#[test]
fn external_record_import_to_prediction_pipeline() {
    // Build a tiny record-format crawl, import, and verify the
    // pipeline consumes it end to end.
    let records = r#"[
        {"question_id": 1,
         "question": {"user": "a", "creation_epoch_s": 0, "score": 1,
                      "body_html": "sorting lists <code>x.sort()</code>"},
         "answers": [{"user": "b", "creation_epoch_s": 7200, "score": 3,
                      "body_html": "use <code>sorted(x)</code>"}]},
        {"question_id": 2,
         "question": {"user": "b", "creation_epoch_s": 10000, "score": 0,
                      "body_html": "generators question"},
         "answers": [{"user": "a", "creation_epoch_s": 20000, "score": 1,
                      "body_html": "materialize them"}]}
    ]"#;
    let (dataset, users) = io::import_records_json(records).expect("imports");
    let (clean, _) = dataset.preprocess();
    assert_eq!(clean.num_questions(), 2);

    let extractor =
        FeatureExtractor::fit(clean.threads(), clean.num_users(), &ExtractorConfig::fast());
    let target = &clean.threads()[1];
    let d_q = extractor.question_topics(target);
    let x = extractor.features(users["a"], target, &d_q);
    assert_eq!(x.len(), extractor.dim());
    assert!(x.iter().all(|v| v.is_finite()));
}
