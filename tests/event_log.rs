//! End-to-end contract of the durable event log (ISSUE 9 tentpole):
//! a WAL that survives a kill-storm — torn appends, duplicated and
//! reordered deliveries, stale rotation leftovers, garbage tails —
//! heals on open/repair and replays to the *same* state hash as an
//! uninterrupted run, at any thread count. Poison events are
//! quarantined and tallied, never fatal.

use std::path::{Path, PathBuf};

use forumcast_data::{encode_event, ingest_events, replay_wal, ForumEvent};
use forumcast_resilience::FaultPlan;
use forumcast_synth::{event_stream, SynthConfig};
use forumcast_wal::{FsyncPolicy, Wal, WalConfig};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("forumcast-root-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wal_cfg() -> WalConfig {
    WalConfig {
        fingerprint: "event-log-test v1".into(),
        // Small segments so the storm spans many rotation boundaries.
        segment_bytes: 8 * 1024,
        fsync: FsyncPolicy::OnRotate,
    }
}

fn storm_events() -> Vec<ForumEvent> {
    let all = event_stream(&SynthConfig::small().with_seed(5));
    assert!(
        all.len() > 400,
        "need a meaningful stream, got {}",
        all.len()
    );
    all.into_iter().take(600).collect()
}

#[test]
fn kill_storm_healed_replay_is_thread_count_invariant() {
    let events = storm_events();
    let cfg = wal_cfg();

    // Reference: one uninterrupted ingest.
    let clean_dir = scratch("storm-clean");
    let clean = ingest_events(&clean_dir, &cfg, &events).unwrap();
    assert_eq!(clean.report.applied, events.len() as u64);
    let clean_hash = clean.state.hash();

    // The storm: three producer "lifetimes", each ending in a
    // simulated kill (garbage tail + stale rotation tmp), with torn
    // appends, duplicate deliveries, and bounded reorders injected
    // mid-flight.
    let storm_dir = scratch("storm-dirty");
    let crash_points = [events.len() / 3, 2 * events.len() / 3, events.len()];
    let plans = [
        "wal-torn-append:50,wal-dup-deliver:77,wal-reorder:33",
        "wal-torn-append:250x2,wal-dup-deliver:230,wal-reorder:210",
        "wal-dup-deliver:450,wal-reorder:460,wal-torn-append:590",
    ];
    let mut reopens = 0;
    for (upto, plan) in crash_points.iter().zip(plans) {
        let outcome = {
            let _faults = FaultPlan::parse(plan).unwrap().arm();
            ingest_events(&storm_dir, &cfg, &events[..*upto]).unwrap()
        };
        reopens += outcome.reopens;
        // SIGKILL mid-write: a partial frame lands on the live
        // segment's tail and a rotation tmp is left behind.
        crash_the_tail(&storm_dir);
    }
    assert!(reopens > 0, "torn appends should have forced reopens");

    // Heal, then finish the interrupted ingest; it must resume, not
    // restart.
    let recovery = Wal::repair(&storm_dir).unwrap();
    assert!(
        recovery.torn > 0,
        "garbage tails should read as torn: {recovery}"
    );
    assert!(
        recovery.tmp_reclaimed > 0,
        "stale tmp reclaimed: {recovery}"
    );
    let healed = ingest_events(&storm_dir, &cfg, &events).unwrap();
    assert!(healed.resumed_from > 0, "the final pass must resume");
    assert!(
        healed.report.dup_skipped > 0,
        "the log carries duplicated frames: {}",
        healed.report
    );

    // The healed log folds to the clean hash at 1, 2, and 7 threads.
    assert_eq!(healed.state.hash(), clean_hash, "healed ingest == clean");
    let mut hashes = Vec::new();
    for threads in [1, 2, 7] {
        let replay = replay_wal(&storm_dir, threads).unwrap();
        assert_eq!(replay.report.poison_total(), 0, "{}", replay.report);
        hashes.push(replay.state.hash());
    }
    assert_eq!(
        hashes,
        vec![clean_hash; 3],
        "replay is thread-count invariant"
    );

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&storm_dir);
}

/// Simulates what a SIGKILL leaves behind: a partial frame appended
/// to the newest segment and a stale `.tmp` from an interrupted
/// rotation.
fn crash_the_tail(dir: &Path) {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segs.sort();
    if let Some(last) = segs.last() {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(last).unwrap();
        // A torn frame: a length varint promising more bytes than
        // follow.
        f.write_all(&[0x40, 0xde, 0xad]).unwrap();
    }
    std::fs::write(dir.join("wal-99999999.seg.tmp"), b"interrupted rotation").unwrap();
}

#[test]
fn poison_events_are_quarantined_never_fatal() {
    let dir = scratch("poison-log");
    let cfg = wal_cfg();
    let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
    let good = |q: u32, ts: f64| ForumEvent::NewQuestion {
        question: q,
        author: q,
        timestamp: ts,
        text: format!("question {q}"),
        code: String::new(),
    };
    wal.append(0, &encode_event(&good(0, 1.0))).unwrap();
    // Undecodable payload.
    wal.append(1, b"not a forum event").unwrap();
    // Decodes, but invalid: NaN timestamp.
    wal.append(2, &encode_event(&good(1, f64::NAN))).unwrap();
    // Decodes, but invalid: answers a question that never existed.
    wal.append(
        3,
        &encode_event(&ForumEvent::NewAnswer {
            question: 42,
            author: 1,
            timestamp: 2.0,
            text: "orphan".into(),
            code: String::new(),
        }),
    )
    .unwrap();
    // Id 4 never written: a gap the replay must concede, not hang on.
    wal.append(5, &encode_event(&good(2, 3.0))).unwrap();
    wal.finish().unwrap();

    for threads in [1, 2] {
        let replay = replay_wal(&dir, threads).unwrap();
        assert_eq!(replay.report.applied, 2, "{}", replay.report);
        assert_eq!(replay.report.poison_total(), 3, "{}", replay.report);
        assert_eq!(replay.report.gaps, 1, "{}", replay.report);
        assert_eq!(
            replay.report.events_in,
            replay.report.applied + replay.report.dup_skipped + replay.report.poison_total(),
            "accounting identity: {}",
            replay.report
        );
        assert!(!replay.poison_samples.is_empty());
        assert_eq!(replay.state.num_threads(), 2);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsync_policy_never_changes_the_folded_state() {
    let events = {
        let all = event_stream(&SynthConfig::small().with_seed(9));
        all.into_iter().take(150).collect::<Vec<_>>()
    };
    let mut hashes = Vec::new();
    for (name, fsync) in [
        ("always", FsyncPolicy::Always),
        ("every8", FsyncPolicy::EveryN(8)),
        ("rotate", FsyncPolicy::OnRotate),
    ] {
        let dir = scratch(&format!("fsync-{name}"));
        let cfg = WalConfig { fsync, ..wal_cfg() };
        let outcome = ingest_events(&dir, &cfg, &events).unwrap();
        hashes.push(outcome.state.hash());
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(hashes[0], hashes[1]);
    assert_eq!(hashes[1], hashes[2]);
}
