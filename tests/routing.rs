//! Integration test: predictions → Section-V router, end to end.

use forumcast::eval::{EvalConfig, ExperimentData};
use forumcast::prelude::*;

#[test]
fn trained_predictions_route_questions() {
    let cfg = EvalConfig::quick().with_seed(1234);
    let (dataset, _) = cfg.synth.generate().preprocess();
    let data = ExperimentData::build(&dataset, &cfg);

    // Train on the first 80% of targets.
    let cut = data.num_targets * 4 / 5;
    let mut ts = TrainingSet::new(data.dim);
    for p in data.positives.iter().filter(|p| p.target < cut) {
        ts.push_answer(p.x.clone(), true);
        ts.push_vote(p.x.clone(), p.votes);
    }
    for n in data.negatives.iter().filter(|n| n.target < cut) {
        ts.push_answer(n.x.clone(), false);
    }
    for t in 0..cut {
        let answers: Vec<(Vec<f64>, f64)> = data
            .positives
            .iter()
            .filter(|p| p.target == t)
            .map(|p| (p.x.clone(), p.response_time))
            .collect();
        if answers.is_empty() {
            continue;
        }
        ts.push_timing_thread(answers, Vec::new(), data.windows[t], data.num_users);
    }
    let model = ResponsePredictor::train(&ts, &TrainConfig::fast());

    let mut router = QuestionRouter::new(RouterConfig {
        epsilon: 0.3,
        default_capacity: 3.0,
        load_window: 24.0,
    });

    let mut routed = 0;
    let mut ranked_real_answerer_first = 0;
    for t in cut..data.num_targets {
        let candidates: Vec<Candidate> = data
            .positives
            .iter()
            .filter(|p| p.target == t)
            .map(|p| (p.user, &p.x))
            .chain(
                data.negatives
                    .iter()
                    .filter(|n| n.target == t)
                    .map(|n| (n.user, &n.x)),
            )
            .map(|(user, x)| {
                let (a, v, r) = model.predict(x, data.windows[t]);
                Candidate {
                    user,
                    answer_prob: a,
                    votes: v,
                    response_time: r,
                }
            })
            .collect();
        if candidates.is_empty() {
            continue;
        }
        if let Some(rec) = router.recommend(t as f64 * 0.1, 0.5, &candidates) {
            routed += 1;
            // Distribution sanity.
            let total: f64 = rec.probabilities().iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            // Does the router tend to surface real answerers?
            if let Some(&top) = rec.ranking().first() {
                if data
                    .positives
                    .iter()
                    .any(|p| p.target == t && p.user == top)
                {
                    ranked_real_answerer_first += 1;
                }
            }
        }
    }
    assert!(routed > 10, "routed only {routed} questions");
    // Eligible sets mix real answerers with random negatives; the
    // trained â should put actual answerers on top far more than the
    // ~50% a coin flip would.
    let hit_rate = ranked_real_answerer_first as f64 / routed as f64;
    assert!(hit_rate > 0.55, "hit rate {hit_rate}");
}

#[test]
fn router_draw_eventually_covers_support() {
    let mut router = QuestionRouter::new(RouterConfig {
        epsilon: 0.0,
        default_capacity: 0.5,
        load_window: 24.0,
    });
    let candidates = [
        Candidate {
            user: UserId(0),
            answer_prob: 0.9,
            votes: 5.0,
            response_time: 1.0,
        },
        Candidate {
            user: UserId(1),
            answer_prob: 0.9,
            votes: 3.0,
            response_time: 1.0,
        },
        Candidate {
            user: UserId(2),
            answer_prob: 0.9,
            votes: 1.0,
            response_time: 1.0,
        },
    ];
    let rec = router.recommend(0.0, 0.0, &candidates).expect("feasible");
    // Capacity 0.5 forces a split across the two best users.
    let mut state = 0u32;
    let mut src = move || {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        (state >> 8) as f64 / (1u32 << 24) as f64
    };
    let mut seen = std::collections::HashSet::new();
    for _ in 0..200 {
        if let Some(u) = rec.draw(&mut src) {
            seen.insert(u);
        }
    }
    assert!(seen.contains(&UserId(0)) && seen.contains(&UserId(1)));
    assert!(!seen.contains(&UserId(2)), "zero-mass user drawn");
}
