#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> fault-injection smoke (FORUMCAST_FAULTS=fold-panic:1)"
FORUMCAST_FAULTS=fold-panic:1 cargo test -q -p forumcast-resilience

echo "All checks passed."
