#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> fault-injection smoke (FORUMCAST_FAULTS=fold-panic:1)"
FORUMCAST_FAULTS=fold-panic:1 cargo test -q -p forumcast-resilience

echo "==> trace smoke (evaluate --trace + JSON/span validation)"
trace_file="$(mktemp -t forumcast-trace-XXXXXX.json)"
trap 'rm -f "$trace_file"' EXIT
cargo run -q -p forumcast-cli --bin forumcast -- \
  evaluate --scale quick --threads 1 --trace "$trace_file" --metrics
cargo run -q -p forumcast-obs --example validate_trace -- "$trace_file" \
  evaluate eval.run_cv eval.fold lda.train features.build

echo "All checks passed."
