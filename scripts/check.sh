#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> fault-injection smoke (FORUMCAST_FAULTS=fold-panic:1)"
FORUMCAST_FAULTS=fold-panic:1 cargo test -q -p forumcast-resilience

echo "==> trace smoke (evaluate --trace + JSON/span validation)"
trace_file="$(mktemp -t forumcast-trace-XXXXXX.json)"
trap 'rm -f "$trace_file"' EXIT
cargo run -q -p forumcast-cli --bin forumcast -- \
  evaluate --scale quick --threads 1 --trace "$trace_file" --metrics
cargo run -q -p forumcast-obs --example validate_trace -- "$trace_file" \
  evaluate eval.run_cv eval.fold lda.train features.build

echo "==> trace smoke (train/stats via FORUMCAST_TRACE)"
cargo build -q -p forumcast-cli
fc=target/debug/forumcast
work_dir="$(mktemp -d -t forumcast-check-XXXXXX)"
trap 'rm -f "$trace_file"; rm -rf "$work_dir"' EXIT
"$fc" generate --scale small --seed 1 --out "$work_dir/data.json" > /dev/null
FORUMCAST_TRACE="$work_dir/stats.trace.json" "$fc" stats --data "$work_dir/data.json" > /dev/null
cargo run -q -p forumcast-obs --example validate_trace -- "$work_dir/stats.trace.json" stats
FORUMCAST_TRACE="$work_dir/train.trace.json" "$fc" train \
  --data "$work_dir/data.json" --fast --out "$work_dir/model.json" > /dev/null
cargo run -q -p forumcast-obs --example validate_trace -- "$work_dir/train.trace.json" \
  train lda.train ml.answer.train ml.vote.train ml.timing.train

echo "==> kill-resume smoke (SIGKILL mid-fold, then bitwise-identical resume)"
ckpt="$work_dir/cv.json"
"$fc" evaluate --scale quick --threads 1 > "$work_dir/clean.txt"
"$fc" evaluate --scale quick --threads 1 \
  --resume "$ckpt" --snapshot-every 2 > /dev/null 2>&1 &
victim=$!
# Wait for the first sub-fold snapshot to hit disk, then pull the plug.
for _ in $(seq 1 1200); do
  compgen -G "$ckpt.fold*.train.json" > /dev/null && break
  kill -0 "$victim" 2>/dev/null || break
  sleep 0.05
done
if ! kill -9 "$victim" 2>/dev/null; then
  echo "kill-resume smoke: run finished before a sub-fold snapshot appeared" >&2
  exit 1
fi
wait "$victim" 2>/dev/null || true
if ! compgen -G "$ckpt.fold*.train.json" > /dev/null; then
  echo "kill-resume smoke: no sub-fold snapshot on disk after SIGKILL" >&2
  exit 1
fi
"$fc" evaluate --scale quick --threads 1 \
  --resume "$ckpt" --snapshot-every 2 > "$work_dir/resumed.txt" 2> /dev/null
# The resumed report must be byte-identical to the uninterrupted one
# (modulo the checkpointing banner the clean run doesn't print).
diff <(grep -v '^checkpointing' "$work_dir/clean.txt") \
     <(grep -v '^checkpointing' "$work_dir/resumed.txt")

echo "All checks passed."
