#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> fault-injection smoke (FORUMCAST_FAULTS=fold-panic:1)"
FORUMCAST_FAULTS=fold-panic:1 cargo test -q -p forumcast-resilience

echo "==> trace smoke (evaluate --trace + JSON/span validation)"
trace_file="$(mktemp -t forumcast-trace-XXXXXX.json)"
trap 'rm -f "$trace_file"' EXIT
cargo run -q -p forumcast-cli --bin forumcast -- \
  evaluate --scale quick --threads 1 --trace "$trace_file" --metrics
cargo run -q -p forumcast-obs --example validate_trace -- "$trace_file" \
  evaluate eval.run_cv eval.fold lda.train features.build

echo "==> trace smoke (train/stats via FORUMCAST_TRACE)"
cargo build -q -p forumcast-cli
fc=target/debug/forumcast
work_dir="$(mktemp -d -t forumcast-check-XXXXXX)"
trap 'rm -f "$trace_file"; rm -rf "$work_dir"' EXIT
"$fc" generate --scale small --seed 1 --out "$work_dir/data.json" > /dev/null
FORUMCAST_TRACE="$work_dir/stats.trace.json" "$fc" stats --data "$work_dir/data.json" > /dev/null
cargo run -q -p forumcast-obs --example validate_trace -- "$work_dir/stats.trace.json" stats
FORUMCAST_TRACE="$work_dir/train.trace.json" "$fc" train \
  --data "$work_dir/data.json" --fast --out "$work_dir/model.json" > /dev/null
cargo run -q -p forumcast-obs --example validate_trace -- "$work_dir/train.trace.json" \
  train lda.train ml.answer.train ml.vote.train ml.timing.train

echo "==> kill-resume smoke (SIGKILL mid-fold, then bitwise-identical resume)"
ckpt="$work_dir/cv.json"
"$fc" evaluate --scale quick --threads 1 > "$work_dir/clean.txt"
"$fc" evaluate --scale quick --threads 1 \
  --resume "$ckpt" --snapshot-every 2 > /dev/null 2>&1 &
victim=$!
# Wait for the first sub-fold snapshot to hit disk, then pull the plug.
for _ in $(seq 1 1200); do
  compgen -G "$ckpt.fold*.train.json" > /dev/null && break
  kill -0 "$victim" 2>/dev/null || break
  sleep 0.05
done
if ! kill -9 "$victim" 2>/dev/null; then
  echo "kill-resume smoke: run finished before a sub-fold snapshot appeared" >&2
  exit 1
fi
wait "$victim" 2>/dev/null || true
if ! compgen -G "$ckpt.fold*.train.json" > /dev/null; then
  echo "kill-resume smoke: no sub-fold snapshot on disk after SIGKILL" >&2
  exit 1
fi
"$fc" evaluate --scale quick --threads 1 \
  --resume "$ckpt" --snapshot-every 2 > "$work_dir/resumed.txt" 2> /dev/null
# The resumed report must be byte-identical to the uninterrupted one
# (modulo the checkpointing banner the clean run doesn't print).
diff <(grep -v '^checkpointing' "$work_dir/clean.txt") \
     <(grep -v '^checkpointing' "$work_dir/resumed.txt")

echo "==> perf smoke (quick features.build, dense vs sparse Gibbs, release)"
# Regressions surface in the log, not as a hard gate: the smoke prints
# wall time and Gibbs tokens/sec for both samplers from the --metrics
# summary (lda.gibbs.tokens counter / lda.train span wall time).
# --topics 64 puts the run in the regime the sparse sampler targets
# (realistic skewed per-word topic counts; the quick preset's K = 4 is
# too small for bucket decomposition to pay for itself).
cargo build -q --release -p forumcast-cli
fcr=target/release/forumcast
for sampler in dense sparse; do
  "$fcr" evaluate --scale quick --threads 1 --topics 64 \
    --lda-sampler "$sampler" --metrics > "$work_dir/perf.$sampler.txt"
  awk -v sampler="$sampler" '
    function ms(str) {
      if (str ~ /us$/) return substr(str, 1, length(str) - 2) / 1000.0
      if (str ~ /ms$/) return substr(str, 1, length(str) - 2) + 0
      if (str ~ /s$/)  return substr(str, 1, length(str) - 1) * 1000.0
      return str + 0
    }
    $1 == "lda.train"        { train_ms = ms($3) }
    $1 == "features.build"   { build_ms = ms($3) }
    $1 == "lda.gibbs.tokens" { tokens = $2 }
    END {
      if (train_ms > 0 && tokens > 0)
        printf "perf[%s]: features.build %.1f ms, lda.train %.1f ms, %.0f Gibbs tokens/sec\n",
               sampler, build_ms, train_ms, tokens / (train_ms / 1000.0)
      else
        printf "perf[%s]: metrics summary missing lda.train/tokens\n", sampler
    }' "$work_dir/perf.$sampler.txt"
done

echo "==> training determinism smoke (serial vs --threads 2, bitwise params)"
# Trains the same quick-scale MLP serially and with 2 workers: prints
# samples/sec for both and hard-fails unless the learned parameters
# are bit-for-bit identical (the fixed-order chunk reduction contract).
cargo build -q --release -p forumcast-ml --example train_throughput
for t in 1 2; do
  target/release/examples/train_throughput --threads "$t" \
    --samples 2048 --epochs 8 > "$work_dir/train.$t.txt"
  echo "train[threads=$t]: $(grep samples_per_sec "$work_dir/train.$t.txt")"
done
diff <(grep params_fnv "$work_dir/train.1.txt") \
     <(grep params_fnv "$work_dir/train.2.txt") \
  || { echo "training determinism smoke: 1-vs-2-thread parameters differ" >&2; exit 1; }

echo "All checks passed."
