#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> fault-injection smoke (FORUMCAST_FAULTS=fold-panic:1)"
FORUMCAST_FAULTS=fold-panic:1 cargo test -q -p forumcast-resilience

echo "==> trace smoke (evaluate --trace + JSON/span validation)"
trace_file="$(mktemp -t forumcast-trace-XXXXXX.json)"
trap 'rm -f "$trace_file"' EXIT
cargo run -q -p forumcast-cli --bin forumcast -- \
  evaluate --scale quick --threads 1 --trace "$trace_file" --metrics
cargo run -q -p forumcast-obs --example validate_trace -- "$trace_file" \
  evaluate eval.run_cv eval.fold lda.train features.build

echo "==> trace smoke (train/stats via FORUMCAST_TRACE)"
cargo build -q -p forumcast-cli
fc=target/debug/forumcast
work_dir="$(mktemp -d -t forumcast-check-XXXXXX)"
trap 'rm -f "$trace_file"; rm -rf "$work_dir"' EXIT
"$fc" generate --scale small --seed 1 --out "$work_dir/data.json" > /dev/null
FORUMCAST_TRACE="$work_dir/stats.trace.json" "$fc" stats --data "$work_dir/data.json" > /dev/null

echo "==> calibration gate (stats --gate vs the paper's §III ranges)"
# The synthetic generator is calibrated against §III; the gate fails
# the build when a generator change walks the shape statistics
# (unanswered fraction, answers/question, posts/user, delay
# quantiles) out of the paper's ranges.
"$fc" stats --data "$work_dir/data.json" --gate | grep -A7 '^calibration'
cargo run -q -p forumcast-obs --example validate_trace -- "$work_dir/stats.trace.json" \
  stats stats.load stats.preprocess stats.graph
FORUMCAST_TRACE="$work_dir/train.trace.json" "$fc" train \
  --data "$work_dir/data.json" --fast --out "$work_dir/model.json" > /dev/null
cargo run -q -p forumcast-obs --example validate_trace -- "$work_dir/train.trace.json" \
  train lda.train ml.answer.train ml.vote.train ml.timing.train

echo "==> kill-storm smoke (repeated SIGKILLs at seeded points, bitwise heal)"
# For each thread count: run clean, then restart the checkpointed run
# and SIGKILL it three times — each kill lands a seeded delay after the
# first observed checkpoint write of that attempt, so the storm samples
# different epochs — and finally let one attempt run to completion. The
# healed report must be byte-identical to the uninterrupted one.
ckpt_activity() {
  # Content fingerprint of every checkpoint artifact (fold-level file,
  # sub-fold snapshots, tmp files); changes on every snapshot write.
  # `|| true` keeps the unmatched glob from tripping pipefail before
  # the first write.
  { cat "$1"* 2>/dev/null || true; } | cksum
}
for t in 1 2; do
  ckpt="$work_dir/storm$t.ckpt"
  "$fc" evaluate --scale quick --threads "$t" > "$work_dir/storm$t.clean.txt"
  kills=0
  for delay in 0.05 0.15 0.30; do
    before="$(ckpt_activity "$ckpt")"
    "$fc" evaluate --scale quick --threads "$t" \
      --resume "$ckpt" --snapshot-every 2 > /dev/null 2>&1 &
    victim=$!
    for _ in $(seq 1 1200); do
      [ "$(ckpt_activity "$ckpt")" != "$before" ] && break
      kill -0 "$victim" 2>/dev/null || break
      sleep 0.05
    done
    sleep "$delay"
    if kill -9 "$victim" 2>/dev/null; then
      kills=$((kills + 1))
    fi
    wait "$victim" 2>/dev/null || true
  done
  if [ "$kills" -lt 3 ]; then
    echo "kill-storm smoke: only $kills of 3 SIGKILLs landed (threads=$t)" >&2
    exit 1
  fi
  if ! compgen -G "$ckpt*" > /dev/null; then
    echo "kill-storm smoke: no checkpoint artifacts on disk after the storm (threads=$t)" >&2
    exit 1
  fi
  "$fc" evaluate --scale quick --threads "$t" \
    --resume "$ckpt" --snapshot-every 2 > "$work_dir/storm$t.healed.txt" 2> /dev/null
  # The healed report must be byte-identical to the uninterrupted one
  # (modulo the checkpointing banner the clean run doesn't print).
  diff <(grep -v '^checkpointing' "$work_dir/storm$t.clean.txt") \
       <(grep -v '^checkpointing' "$work_dir/storm$t.healed.txt")
  echo "kill-storm[threads=$t]: $kills SIGKILLs, healed run bitwise-identical"
done

echo "==> disabled-probe golden smoke (quick evaluate output is byte-stable)"
# With no --trace/--metrics/--bench-json the collector never arms, and
# the report must be byte-identical to the committed golden: telemetry
# must cost nothing AND change nothing when nobody is collecting.
diff tests/golden/eval_quick_t1.txt "$work_dir/storm1.clean.txt" \
  || { echo "disabled-probe smoke: quick evaluate output drifted from tests/golden/eval_quick_t1.txt" >&2; exit 1; }
echo "disabled-probe: quick evaluate output matches the golden byte-for-byte"

echo "==> corruption smoke (ckpt verify flags a flipped byte, repair heals)"
# The storm leaves a completed fold-level binary checkpoint behind;
# flip the last byte (the final frame's CRC) and the verifier must
# reject it naming the offending frame, after which repair truncates
# to the valid prefix and verify passes again.
good="$work_dir/storm1.ckpt"
bad="$work_dir/flipped.ckpt"
[ -f "$good" ] || { echo "corruption smoke: storm left no checkpoint" >&2; exit 1; }
cp "$good" "$bad"
size=$(stat -c %s "$bad")
last=$(dd if="$bad" bs=1 skip=$((size - 1)) count=1 2>/dev/null | od -An -tu1 | tr -d ' ')
printf "$(printf '\\%03o' $((last ^ 8)))" \
  | dd of="$bad" bs=1 seek=$((size - 1)) conv=notrunc 2>/dev/null
if "$fc" ckpt verify --file "$bad" > "$work_dir/verify.txt" 2>&1; then
  echo "corruption smoke: verify accepted a corrupted checkpoint" >&2
  exit 1
fi
grep -Eq 'frame [0-9]+' "$work_dir/verify.txt" \
  || { echo "corruption smoke: verify did not name the damaged frame" >&2; \
       cat "$work_dir/verify.txt" >&2; exit 1; }
"$fc" ckpt repair --file "$bad" > /dev/null
"$fc" ckpt verify --file "$bad" > /dev/null
echo "corruption: $(head -1 "$work_dir/verify.txt"), repaired and re-verified"

echo "==> checkpoint size report (ckpt.subfold.bytes, JSON vs binary)"
# Informational, like the perf smoke: the same checkpointed run in
# both formats, reporting sub-fold snapshot volume and write time.
for fmt in json binary; do
  "$fc" evaluate --scale quick --threads 1 --ckpt-format "$fmt" \
    --resume "$work_dir/size.$fmt.ckpt" --snapshot-every 2 --metrics \
    > "$work_dir/size.$fmt.txt"
  # write_ms lives in the histogram table: name count p50 p90 p99 max sum.
  awk -v fmt="$fmt" '
    $1 == "ckpt.subfold.saves"    { saves = $2 }
    $1 == "ckpt.subfold.bytes"    { bytes = $2 }
    $1 == "ckpt.subfold.write_ms" { wms = $7; wp50 = $3; wp99 = $5 }
    END {
      if (saves > 0)
        printf "ckpt[%s]: %d sub-fold saves, %d bytes (%d/save), %d ms writing (p50 %d, p99 %d)\n",
               fmt, saves, bytes, bytes / saves, wms, wp50, wp99
      else
        printf "ckpt[%s]: no sub-fold saves recorded\n", fmt
    }' "$work_dir/size.$fmt.txt"
done

echo "==> perf smoke (quick features.build, dense vs sparse Gibbs, release)"
# Regressions surface in the log, not as a hard gate: the smoke prints
# wall time and Gibbs tokens/sec for both samplers from the --metrics
# summary (lda.gibbs.tokens counter / lda.train span wall time).
# --topics 64 puts the run in the regime the sparse sampler targets
# (realistic skewed per-word topic counts; the quick preset's K = 4 is
# too small for bucket decomposition to pay for itself).
cargo build -q --release -p forumcast-cli
fcr=target/release/forumcast
for sampler in dense sparse; do
  "$fcr" evaluate --scale quick --threads 1 --topics 64 \
    --lda-sampler "$sampler" --metrics > "$work_dir/perf.$sampler.txt"
  awk -v sampler="$sampler" '
    function ms(str) {
      if (str ~ /us$/) return substr(str, 1, length(str) - 2) / 1000.0
      if (str ~ /ms$/) return substr(str, 1, length(str) - 2) + 0
      if (str ~ /s$/)  return substr(str, 1, length(str) - 1) * 1000.0
      return str + 0
    }
    $1 == "lda.train"        { train_ms = ms($3) }
    $1 == "features.build"   { build_ms = ms($3) }
    $1 == "lda.gibbs.tokens" { tokens = $2 }
    END {
      if (train_ms > 0 && tokens > 0)
        printf "perf[%s]: features.build %.1f ms, lda.train %.1f ms, %.0f Gibbs tokens/sec\n",
               sampler, build_ms, train_ms, tokens / (train_ms / 1000.0)
      else
        printf "perf[%s]: metrics summary missing lda.train/tokens\n", sampler
    }' "$work_dir/perf.$sampler.txt"
done

echo "==> perf gate (bench compare against committed BENCH_quick.json)"
# Machine-readable regression gate: the quick run emits a versioned
# bench report which `forumcast bench compare` diffs against the
# committed baseline, failing on >=1.5x wall/span-total or >=2x span
# p99 regressions (spans under 20 ms in the baseline are noise-exempt).
# The gated run goes through `--data-dir` so the baseline also covers
# sharded generation (synth.generate/shard/merge) and the columnar
# spill + streamed-fold read path on top of the usual eval spans.
"$fcr" evaluate --scale quick --threads 1 --data-dir "$work_dir/bench-spill" \
  --bench-json "$work_dir/BENCH_quick.json" > /dev/null
"$fcr" bench compare BENCH_quick.json "$work_dir/BENCH_quick.json" \
  --tolerance 1.5 --p99-tolerance 2.0 --min-ms 20

echo "==> streamed-fold smoke (--data-dir: bitwise metrics, bounded RSS)"
# The columnar data plane's end-to-end contract: sharded generation is
# bitwise thread-count-invariant, and evaluating from the on-disk
# spill reproduces the fully-resident report byte-for-byte while peak
# RSS stays bounded (the streamed path holds one fold, not the full
# feature matrix).
"$fcr" generate --scale medium --seed 9 --threads 2 --out "$work_dir/med-t2.json" > /dev/null
"$fcr" generate --scale medium --seed 9 --threads 7 --out "$work_dir/med-t7.json" > /dev/null
cmp "$work_dir/med-t2.json" "$work_dir/med-t7.json" \
  || { echo "streamed smoke: sharded generate differs at 2 vs 7 threads" >&2; exit 1; }
"$fcr" evaluate --scale quick --threads 2 --data-dir "$work_dir/smoke-spill" \
  > "$work_dir/streamed.txt"
# Strip the spill banner, the RSS line, and the "N worker threads"
# header (the golden ran at --threads 1; running the smoke at 2 also
# proves the streamed path's thread invariance) before comparing.
diff <(grep -v '^spilling\|^peak RSS\|^running' "$work_dir/streamed.txt") \
     <(grep -v '^running' tests/golden/eval_quick_t1.txt) \
  || { echo "streamed smoke: --data-dir metrics drifted from the resident golden" >&2; exit 1; }
rss_mb="$(grep '^peak RSS:' "$work_dir/streamed.txt" | awk '{print int($3)}')"
rss_bound_mb=512
if [ -z "$rss_mb" ]; then
  echo "streamed smoke: no peak RSS line in the --data-dir report" >&2
  exit 1
fi
if [ "$rss_mb" -ge "$rss_bound_mb" ]; then
  echo "streamed smoke: peak RSS ${rss_mb} MB exceeds the ${rss_bound_mb} MB bound" >&2
  exit 1
fi
echo "streamed-fold: generate invariant at 2/7 threads, metrics bitwise-identical, peak RSS ${rss_mb} MB < ${rss_bound_mb} MB"

echo "==> ingest kill-storm smoke (SIGKILL mid-append, wal repair + replay heal)"
# The WAL twin of the checkpoint storm: SIGKILL the event-log producer
# three times mid-append (each kill a seeded delay after the first
# observed segment write of that attempt), heal with `wal repair`, let
# one attempt complete, and require the healed log to replay — at 1
# and 2 threads — to the same state hash as an uninterrupted ingest.
wal_activity() {
  { cat "$1"/* 2>/dev/null || true; } | cksum
}
state_hash() {
  grep '^state hash:' "$1" | awk '{print $3}'
}
"$fcr" ingest --wal "$work_dir/ingest.clean.wal" --scale medium --seed 3 \
  --fsync always --segment-bytes 16384 \
  --bench-json "$work_dir/ingest.clean.bench.json" > "$work_dir/ingest.clean.txt"
clean_hash="$(state_hash "$work_dir/ingest.clean.txt")"
for t in 1 2; do
  wal="$work_dir/ingest.storm$t.wal"
  kills=0
  for delay in 0.05 0.15 0.30; do
    before="$(wal_activity "$wal")"
    "$fcr" ingest --wal "$wal" --scale medium --seed 3 \
      --fsync always --segment-bytes 16384 --threads "$t" > /dev/null 2>&1 &
    victim=$!
    for _ in $(seq 1 1200); do
      [ "$(wal_activity "$wal")" != "$before" ] && break
      kill -0 "$victim" 2>/dev/null || break
      sleep 0.02
    done
    sleep "$delay"
    if kill -9 "$victim" 2>/dev/null; then
      kills=$((kills + 1))
    fi
    wait "$victim" 2>/dev/null || true
  done
  if [ "$kills" -lt 3 ]; then
    echo "ingest kill-storm smoke: only $kills of 3 SIGKILLs landed (threads=$t)" >&2
    exit 1
  fi
  "$fcr" wal repair --dir "$wal" > "$work_dir/ingest.repair$t.txt"
  "$fcr" ingest --wal "$wal" --scale medium --seed 3 \
    --fsync always --segment-bytes 16384 --threads "$t" \
    --bench-json "$work_dir/ingest.storm$t.bench.json" > "$work_dir/ingest.storm$t.txt"
  grep -q 'resumed from event id' "$work_dir/ingest.storm$t.txt" \
    || { echo "ingest kill-storm smoke: healed run did not resume (threads=$t)" >&2; \
         cat "$work_dir/ingest.storm$t.txt" >&2; exit 1; }
  for rt in 1 2; do
    "$fcr" wal replay --dir "$wal" --threads "$rt" > "$work_dir/ingest.replay$t.$rt.txt"
    replay_hash="$(state_hash "$work_dir/ingest.replay$t.$rt.txt")"
    if [ "$replay_hash" != "$clean_hash" ]; then
      echo "ingest kill-storm smoke: healed replay hash $replay_hash != clean \
$clean_hash (storm threads=$t, replay threads=$rt)" >&2
      exit 1
    fi
  done
  echo "ingest kill-storm[threads=$t]: $kills SIGKILLs," \
    "$(sed 's/^repaired [^:]*: //' "$work_dir/ingest.repair$t.txt" | head -1)," \
    "healed replay hash == clean at 1/2 threads"
done
# The bench reports must carry the ingest spans and be consumable by
# the compare gate (generous tolerances: the healed run appends only
# the tail, so its timings are not comparable — this checks plumbing,
# not perf).
grep -q '"ingest.deliver"' "$work_dir/ingest.clean.bench.json" \
  || { echo "ingest smoke: bench report is missing the ingest spans" >&2; exit 1; }
"$fcr" bench compare "$work_dir/ingest.clean.bench.json" \
  "$work_dir/ingest.storm1.bench.json" \
  --tolerance 1000 --p99-tolerance 1000 --min-ms 0 > /dev/null
echo "ingest: bench reports carry ingest spans, compare consumes them"

echo "==> training determinism smoke (serial vs --threads 2, bitwise params)"
# Trains the same quick-scale MLP serially and with 2 workers: prints
# samples/sec for both and hard-fails unless the learned parameters
# are bit-for-bit identical (the fixed-order chunk reduction contract).
cargo build -q --release -p forumcast-ml --example train_throughput
for t in 1 2; do
  target/release/examples/train_throughput --threads "$t" \
    --samples 2048 --epochs 8 > "$work_dir/train.$t.txt"
  echo "train[threads=$t]: $(grep samples_per_sec "$work_dir/train.$t.txt")"
done
diff <(grep params_fnv "$work_dir/train.1.txt") \
     <(grep params_fnv "$work_dir/train.2.txt") \
  || { echo "training determinism smoke: 1-vs-2-thread parameters differ" >&2; exit 1; }

echo "All checks passed."
