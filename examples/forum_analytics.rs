//! Forum analytics: the Social Learning Network view of a forum —
//! graphs, centralities, topics, and descriptive statistics ("the
//! learnt features can provide analytics to forum administrators",
//! paper Section VI).
//!
//! ```text
//! cargo run --release --example forum_analytics
//! ```

use forumcast::features::{ExtractorConfig, FeatureExtractor};
use forumcast::graph::{betweenness, closeness, resource_allocation};
use forumcast::prelude::*;

fn main() {
    let (dataset, report) = SynthConfig::small().with_seed(99).generate().preprocess();
    println!("forum: {}", dataset.stats());
    println!("cleaning: {report}\n");

    // --- SLN graph structure (paper Figure 2) ---
    let qa = qa_graph(dataset.num_users(), dataset.threads());
    let dense = dense_graph(dataset.num_users(), dataset.threads());
    for (name, g) in [
        ("question-answer graph G_QA", &qa),
        ("denser graph G_D", &dense),
    ] {
        let s = GraphStats::compute(g);
        println!(
            "{name}: avg degree {:.2}, {} components (largest {}), disconnected: {}",
            s.average_degree,
            s.num_components,
            s.largest_component,
            s.is_disconnected()
        );
    }

    // --- most central users ---
    let bc = betweenness(&qa);
    let cc = closeness(&qa);
    let mut hubs: Vec<u32> = (0..dataset.num_users()).collect();
    hubs.sort_by(|&a, &b| bc[b as usize].total_cmp(&bc[a as usize]));
    println!("\ntop connectors (betweenness on G_QA):");
    for &u in hubs.iter().take(5) {
        println!(
            "  u{u}: betweenness {:.1}, closeness {:.3}, degree {}",
            bc[u as usize],
            cc[u as usize],
            qa.degree(u)
        );
    }

    // --- topics discussed (LDA over all posts) ---
    let extractor = FeatureExtractor::fit(
        dataset.threads(),
        dataset.num_users(),
        &ExtractorConfig::fast(),
    );
    println!(
        "\ndiscussion topics (K = {}):",
        extractor.topics().num_topics()
    );
    let ctx = extractor.context();
    for k in 0..extractor.topics().num_topics() {
        // Count users whose dominant interest is topic k.
        let specialists = (0..dataset.num_users())
            .map(UserId)
            .filter(|&u| {
                let d = ctx.user_topics(u);
                d.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    == Some(k)
                    && ctx.answers_provided(u) > 0.0
            })
            .count();
        println!("  topic {k}: {specialists} specialist answerers");
    }

    // --- tie strength between a specific pair ---
    let pairs = dataset.answered_pairs();
    if let Some(p) = pairs.first() {
        let thread = &dataset.threads()[p.question_index];
        let asker = thread.asker();
        println!(
            "\npair analytics for {} answering {} (asked by {asker}):",
            p.user, p.question
        );
        println!(
            "  thread co-occurrence: {}",
            ctx.cooccurrence(p.user, asker)
        );
        println!(
            "  resource allocation (QA / D): {:.4} / {:.4}",
            resource_allocation(&qa, p.user.0, asker.0),
            resource_allocation(&dense, p.user.0, asker.0),
        );
    }

    // --- activity vs responsiveness (paper Figure 4b) ---
    println!("\nmedian response time by activity level:");
    for thr in [1.0, 2.0, 5.0] {
        let times: Vec<f64> = (0..dataset.num_users())
            .map(UserId)
            .filter(|&u| ctx.answers_provided(u) >= thr)
            .map(|u| ctx.median_response_time(u))
            .collect();
        if times.is_empty() {
            continue;
        }
        let mut sorted = times.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        println!(
            "  users with ≥{thr} answers: {} users, median r_u = {:.2} h",
            times.len(),
            sorted[sorted.len() / 2]
        );
    }
}
