//! Question routing (the paper's Section V): use the trained
//! predictors to recommend answerers for incoming questions under a
//! quality/timing tradeoff `λ` and per-user load caps.
//!
//! ```text
//! cargo run --release --example question_routing
//! ```

use forumcast::prelude::*;

fn main() {
    // Reuse the evaluation plumbing to get a trained-ready dataset:
    // features for every (user, question) candidate pair.
    let cfg = EvalConfig::quick().with_seed(21);
    let (dataset, _) = cfg.synth.generate().preprocess();
    let data = ExperimentData::build(&dataset, &cfg);

    // Train the joint predictor on the first 80% of target threads.
    let cut = data.num_targets * 4 / 5;
    let mut ts = TrainingSet::new(data.dim);
    for p in data.positives.iter().filter(|p| p.target < cut) {
        ts.push_answer(p.x.clone(), true);
        ts.push_vote(p.x.clone(), p.votes);
    }
    for n in data.negatives.iter().filter(|n| n.target < cut) {
        ts.push_answer(n.x.clone(), false);
    }
    for t in 0..cut {
        let answers: Vec<(Vec<f64>, f64)> = data
            .positives
            .iter()
            .filter(|p| p.target == t)
            .map(|p| (p.x.clone(), p.response_time))
            .collect();
        if answers.is_empty() {
            continue;
        }
        let non: Vec<Vec<f64>> = data
            .negatives
            .iter()
            .filter(|n| n.target == t)
            .map(|n| n.x.clone())
            .collect();
        ts.push_timing_thread(answers, non, data.windows[t], data.num_users);
    }
    println!("training joint predictor …");
    let model = ResponsePredictor::train(&ts, &TrainConfig::fast());

    // Route the remaining questions with two different λ values —
    // λ = 0 optimizes pure quality, larger λ trades votes for speed.
    for &lambda in &[0.0, 1.0] {
        let mut router = QuestionRouter::new(RouterConfig {
            epsilon: 0.4,
            default_capacity: 2.0,
            load_window: 24.0,
        });
        println!("\n── routing with λ = {lambda} ──");
        let mut shown = 0;
        for t in cut..data.num_targets {
            let candidates: Vec<Candidate> = data
                .positives
                .iter()
                .filter(|p| p.target == t)
                .map(|p| (p.user, &p.x))
                .chain(
                    data.negatives
                        .iter()
                        .filter(|n| n.target == t)
                        .map(|n| (n.user, &n.x)),
                )
                .map(|(user, x)| {
                    let (a, v, r) = model.predict(x, data.windows[t]);
                    Candidate {
                        user,
                        answer_prob: a,
                        votes: v,
                        response_time: r,
                    }
                })
                .collect();
            let now = t as f64 * 0.5;
            if let Some(rec) = router.recommend(now, lambda, &candidates) {
                if let Some(&top) = rec.ranking().first() {
                    router.record_answer(now, top);
                    if shown < 5 {
                        let c = candidates.iter().find(|c| c.user == top).expect("ranked");
                        println!(
                            "  question #{t}: recommend {top} (â {:.2}, v̂ {:+.2}, r̂ {:.1} h; objective {:+.2})",
                            c.answer_prob,
                            c.votes,
                            c.response_time,
                            rec.objective()
                        );
                        shown += 1;
                    }
                }
            }
        }
    }
    println!("\nλ raised → the router favors faster (if lower-voted) answerers.");
}
