//! Quickstart: generate a forum, extract the paper's 20 features,
//! train the three predictors, and inspect predictions for one
//! question.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use forumcast::prelude::*;

fn main() {
    // 1. A synthetic Stack-Overflow-like forum (30 simulated days),
    //    preprocessed exactly as in the paper's Section III-A.
    let raw = SynthConfig::small().with_seed(7).generate();
    let (dataset, report) = raw.preprocess();
    println!("preprocessing: {report}");
    println!("dataset: {}", dataset.stats());

    // 2. Fit the feature pipeline (LDA topics + SLN graphs + user
    //    aggregates) on the first 80% of threads as history.
    let split = dataset.num_questions() * 4 / 5;
    let history = &dataset.threads()[..split];
    let extractor = FeatureExtractor::fit(history, dataset.num_users(), &ExtractorConfig::fast());
    println!(
        "feature pipeline ready: dim = {} (18 + 2K, K = {})",
        extractor.dim(),
        extractor.topics().num_topics()
    );

    // 3. Build a training set over the history threads themselves
    //    (answers become positive samples for all three tasks).
    let horizon = dataset.horizon();
    let mut ts = TrainingSet::new(extractor.dim());
    let mut rng_state = 0x5EEDu64;
    let mut next_user = |n: u32| {
        // Tiny xorshift for negative sampling, keeping this example
        // dependency-free.
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        UserId((rng_state % n as u64) as u32)
    };
    for thread in history {
        let d_q = extractor.question_topics(thread);
        let window = (horizon - thread.asked_at()).max(0.5);
        let mut answers = Vec::new();
        for a in &thread.answers {
            let x = extractor.features(a.author, thread, &d_q);
            ts.push_answer(x.clone(), true);
            ts.push_vote(x.clone(), a.votes as f64);
            answers.push((x, a.timestamp - thread.asked_at()));
        }
        // One random non-answerer per answer (negative + survival sample).
        let mut negatives = Vec::new();
        for _ in 0..thread.answers.len() {
            let u = next_user(dataset.num_users());
            if thread.answered_by(u) || u == thread.asker() {
                continue;
            }
            let x = extractor.features(u, thread, &d_q);
            ts.push_answer(x.clone(), false);
            negatives.push(x);
        }
        if !answers.is_empty() {
            ts.push_timing_thread(answers, negatives, window, dataset.num_users() as usize);
        }
    }
    let (na, nv, nt) = ts.counts();
    println!("training on {na} answer samples, {nv} vote samples, {nt} threads …");
    let model = ResponsePredictor::train(&ts, &TrainConfig::fast());

    // 4. Predict for a held-out question: its real answerer vs. a
    //    random bystander.
    let target = &dataset.threads()[split];
    let d_q = extractor.question_topics(target);
    let window = (horizon - target.asked_at()).max(0.5);
    let answerer = target.answers[0].author;
    let bystander = (0..dataset.num_users())
        .map(UserId)
        .find(|&u| !target.answered_by(u) && u != target.asker())
        .expect("some bystander");

    println!(
        "\nheld-out question {} (asked at {:.1} h):",
        target.id,
        target.asked_at()
    );
    for (name, u) in [("actual answerer", answerer), ("bystander", bystander)] {
        let x = extractor.features(u, target, &d_q);
        let (a, v, r) = model.predict(&x, window);
        println!("  {name:<16} {u}: â = {a:.3}, v̂ = {v:+.2} votes, r̂ = {r:.2} h");
    }
    let observed = &target.answers[0];
    println!(
        "  observed          {}: answered after {:.2} h with {} votes",
        answerer,
        observed.timestamp - target.asked_at(),
        observed.votes
    );
}
