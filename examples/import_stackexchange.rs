//! Importing a real crawl: the record format mirrors the shape of a
//! Stack Exchange API dump (string user keys, epoch timestamps, HTML
//! bodies with `<code>` blocks). This is the path for running the
//! library on the paper's actual data source.
//!
//! ```text
//! cargo run --release --example import_stackexchange
//! ```

use forumcast::data::io::{import_records_json, to_json};

/// A miniature crawl in the external record format.
const CRAWL: &str = r#"[
  {
    "question_id": 55001,
    "question": {
      "user": "alice",
      "creation_epoch_s": 1528000000,
      "score": 4,
      "body_html": "How do I reverse a list in Python? I tried <code>list.reverse()</code> but need a copy."
    },
    "answers": [
      {
        "user": "bob",
        "creation_epoch_s": 1528003600,
        "score": 7,
        "body_html": "Use slicing: <code>xs[::-1]</code> returns a reversed copy."
      },
      {
        "user": "carol",
        "creation_epoch_s": 1528010800,
        "score": 2,
        "body_html": "Alternatively <code>list(reversed(xs))</code> works too."
      }
    ]
  },
  {
    "question_id": 55002,
    "question": {
      "user": "bob",
      "creation_epoch_s": 1528020000,
      "score": 1,
      "body_html": "Why does my generator exhaust after one pass?"
    },
    "answers": [
      {
        "user": "alice",
        "creation_epoch_s": 1528027200,
        "score": 3,
        "body_html": "Generators are single-use iterators; materialize with <code>list()</code> if you need to re-iterate."
      }
    ]
  },
  {
    "question_id": 55003,
    "question": {
      "user": "dave",
      "creation_epoch_s": 1528030000,
      "score": 0,
      "body_html": "Unanswered question that preprocessing will drop."
    },
    "answers": []
  }
]"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (dataset, user_map) = import_records_json(CRAWL)?;
    println!("imported: {}", dataset.stats());
    println!("user key mapping:");
    let mut keys: Vec<_> = user_map.iter().collect();
    keys.sort_by_key(|(k, _)| k.as_str());
    for (key, id) in keys {
        println!("  {key:<8} -> {id}");
    }

    // The paper's preprocessing (Section III-A).
    let (clean, report) = dataset.preprocess();
    println!("\npreprocessing: {report}");

    // Targets extracted per answered pair.
    println!("\nanswer pairs (targets a, v, r):");
    for p in clean.answered_pairs() {
        println!(
            "  {} answered {}: v = {:+}, r = {:.2} h",
            p.user, p.question, p.votes, p.response_time
        );
    }

    // Word/code split from the HTML bodies.
    let t = clean.threads().first().expect("kept a thread");
    println!(
        "\nquestion {}: {} word chars, {} code chars",
        t.id,
        t.question.body.word_len(),
        t.question.body.code_len()
    );

    // Round-trip to the native JSON format for storage.
    let native = to_json(&clean)?;
    println!("\nnative JSON export: {} bytes", native.len());
    Ok(())
}
